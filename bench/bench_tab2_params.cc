/**
 * @file
 * Table II: the simulation parameters. This bench verifies and prints
 * the default configuration so the reproduction's parameters are
 * auditable against the paper's table.
 */

#include "bench/common.hh"
#include "sim/logging.hh"

using namespace barre;
using namespace barre::bench;

namespace
{

/** Panics (exit code) if a default drifted from the paper's table. */
void
assertDefaultsMatchTableII(const SystemConfig &cfg)
{
    barre_assert(cfg.chiplets == 4, "chiplets");
    barre_assert(cfg.cus_per_chiplet == 64, "4 SAs x 16 CUs");
    barre_assert(cfg.chiplet.l2_tlb.entries == 512, "L2 TLB");
    barre_assert(cfg.chiplet.l2_tlb.ways == 16, "L2 TLB ways");
    barre_assert(cfg.chiplet.l2_tlb.lookup_latency == 10, "L2 lat");
    barre_assert(cfg.chiplet.l1_tlb.entries == 64, "L1 TLB");
    barre_assert(cfg.iommu.ptws == 16, "PTWs");
    barre_assert(cfg.iommu.walk_latency == 500, "walk latency");
    barre_assert(cfg.iommu.pw_queue_entries == 48, "PW-queue");
    barre_assert(cfg.fbarre.filter.rows == 256, "cuckoo rows");
    barre_assert(cfg.fbarre.filter.ways == 4, "cuckoo ways");
    barre_assert(cfg.fbarre.filter.fingerprint_bits == 9,
                 "fingerprint");
    barre_assert(cfg.driver.merge_limit == 2, "2-merge default");
    barre_assert(cfg.fbarre.pec_buffer_entries == 5, "PEC buffer");
}

} // namespace

int
main(int argc, char **argv)
{
    (void)argc;
    (void)argv;
    SystemConfig cfg = SystemConfig::fbarreCfg(2);
    cfg.normalize();
    assertDefaultsMatchTableII(cfg);
    TextTable t({"parameter", "value", "paper (Table II)"});
    t.addRow({"GPU chiplets", std::to_string(cfg.chiplets), "4"});
    t.addRow({"CUs", std::to_string(cfg.chiplets *
                                    cfg.cus_per_chiplet),
              "256 total (16/SA x 4 SA x 4)"});
    t.addRow({"L1 TLB", "64-entry fully-assoc, 1cy, per CU", "same"});
    t.addRow({"L2 TLB",
              "512-entry 16-way, 10cy, 16 MSHRs, chip-shared", "same"});
    t.addRow({"L1 vector cache", "16KB 4-way 16 MSHRs", "same"});
    t.addRow({"L2 cache", "2MB 16-way 64 MSHRs", "same"});
    t.addRow({"DRAM", "1 TB/s, 100ns", "same"});
    t.addRow({"IOMMU", "16 PTWs, 500cy walks, 48 PW-queue", "same"});
    t.addRow({"Inter-chip link", "768 GB/s, 32cy", "same"});
    t.addRow({"CPU-GPU", "PCIe Gen4 x16, 150cy", "same"});
    t.addRow({"Cuckoo filter", "9-bit fp, 4-way, 256 rows", "same"});
    t.addRow({"Merged coalescing group", "2 (default)", "same"});
    t.addRow({"PEC buffer", "5 x 118 bits", "same"});
    t.addRow({"CTA/page scheduling", "LASP", "same"});
    t.print("Table II: simulation parameters");
    return 0;
}
