/**
 * @file
 * Fig 4: performance impact of the L2 TLB MSHR count.
 *
 * Paper shape: doubling the MSHRs from 16 to 32 buys only ~6% on
 * average - the bottleneck is the IOMMU's ability to *process* misses,
 * not to hold them.
 */

#include "bench/common.hh"

using namespace barre;
using namespace barre::bench;

int
main(int argc, char **argv)
{
    ResultStore store;
    std::vector<NamedConfig> configs;
    for (std::uint32_t mshrs : {16u, 32u, 64u}) {
        SystemConfig cfg = SystemConfig::baselineAts();
        cfg.chiplet.l2_tlb.mshrs = mshrs;
        configs.push_back({std::to_string(mshrs) + "-MSHR", cfg});
    }
    (void)argc;
    (void)argv;
    const auto &apps = standardSuite();
    const auto specs = soloSpecs(apps);
    runAll(store, configs, specs, envScale());

    store.printSpeedupTable("Fig 4: speedup vs L2 TLB MSHRs", "16-MSHR",
                            {"32-MSHR", "64-MSHR"}, specs);
    std::printf("\npaper: ~6%% average from doubling MSHRs; most apps "
                "flat.\n");
    return 0;
}
