/**
 * @file
 * Fig 1: baseline speedup with 8, 16, 32, and infinite PTWs.
 *
 * Paper shape: near-linear speedup up to 32 PTWs for most apps, but the
 * infinite-PTW speedup saturates around 2x - queueing is removed, the
 * remaining walk + PCIe latency is not.
 */

#include "bench/common.hh"

using namespace barre;
using namespace barre::bench;

int
main(int argc, char **argv)
{
    ResultStore store;
    std::vector<NamedConfig> configs;
    for (std::uint32_t ptws : {8u, 16u, 32u, 0u}) {
        SystemConfig cfg = SystemConfig::baselineAts();
        cfg.iommu.ptws = ptws;
        configs.push_back(
            {ptws == 0 ? "inf-PTW" : std::to_string(ptws) + "-PTW", cfg});
    }
    (void)argc;
    (void)argv;
    const auto &apps = standardSuite();
    const auto specs = soloSpecs(apps);
    runAll(store, configs, specs, envScale());

    store.printSpeedupTable("Fig 1: speedup vs number of PTWs", "8-PTW",
                            {"16-PTW", "32-PTW", "inf-PTW"}, specs);
    std::printf("\npaper: near-linear to 32 PTWs; infinite saturates "
                "around 2x.\n");
    return 0;
}
