/**
 * @file
 * Self-benchmark for the experiment runner and the event-queue hot path.
 *
 * Runs a fixed, cost-skewed (config x app) matrix three ways — serial
 * (jobs=1), parallel in index order, and parallel with the
 * longest-expected-first ordering runMany() uses (cellCostHint) —
 * checks all results are identical, and emits machine-readable JSON
 * so the performance trajectory is tracked from PR to PR:
 *
 *   build/bench/bench_runner_speedup [out.json]  # BENCH_runner.json
 *
 * JSON fields: host cores, jobs, serial/parallel wall seconds, speedup,
 * the ordering gain (index-order wall / longest-first wall, > 1 means
 * the long `gups`-class cells no longer tail the batch), simulated
 * events/sec, and a raw EventQueue schedule+fire throughput
 * microbenchmark.
 *
 * $BARRE_SCALE scales the workload (default 0.1 here: big enough to
 * measure, small enough for CI).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hh"
#include "harness/pool.hh"
#include "sim/event_queue.hh"

using namespace barre;
using namespace barre::bench;

namespace
{

double
wallSeconds(const std::function<void()> &fn)
{
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

/** Raw EventQueue throughput: self-rescheduling chains, ~1M events. */
double
eventQueueEventsPerSec()
{
    constexpr std::uint64_t kChains = 64;
    constexpr std::uint64_t kEvents = 1'000'000;
    EventQueue eq;
    std::uint64_t fired = 0;
    std::function<void(std::uint64_t)> beat =
        [&](std::uint64_t chain) {
            if (++fired >= kEvents)
                return;
            // Mix of heap pushes and the zero-delay fast lane, like a
            // real simulation's wakeup traffic.
            eq.scheduleAfter(chain % 4 == 0 ? 0 : 1 + chain % 7,
                             [&beat, chain] { beat(chain); });
        };
    for (std::uint64_t c = 0; c < kChains; ++c)
        eq.scheduleAfter(1 + c % 5, [&beat, c] { beat(c); });
    double secs = wallSeconds([&] { eq.run(); });
    return secs > 0 ? static_cast<double>(eq.fired()) / secs : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path = argc > 1 ? argv[1] : "BENCH_runner.json";
    double scale = envScale(0.1);

    unsigned cores = std::thread::hardware_concurrency();
    unsigned jobs = ThreadPool::defaultWorkers();
    if (!std::getenv("BARRE_JOBS"))
        jobs = std::min(jobs, 8u);

    std::vector<NamedConfig> cfgs{
        {"baseline", SystemConfig::baselineAts()},
        {"fbarre", SystemConfig::fbarreCfg(2)},
    };
    for (auto &nc : cfgs)
        nc.cfg.workload_scale = scale;
    const auto specs = soloSpecs(scaledSubset());

    std::fprintf(stderr,
                 "runner self-benchmark: %zu cells, scale %.3g, "
                 "%u cores, %u jobs\n",
                 cfgs.size() * specs.size(), scale, cores, jobs);

    // Index-order scheduling reference: the same cells through the
    // unhinted runManyJobs() path, so the only difference from the
    // ordered run is the start order.
    std::vector<std::function<RunMetrics()>> sims;
    for (const auto &nc : cfgs) {
        for (const auto &spec : specs) {
            sims.push_back([&nc, &spec] {
                RunMetrics m = runScenario(nc.cfg, spec);
                m.config = nc.name;
                return m;
            });
        }
    }

    std::vector<RunMetrics> serial, unordered, parallel;
    double serial_s = wallSeconds(
        [&] { serial = runMany(cfgs, specs, /*jobs=*/1); });
    double unordered_s = wallSeconds(
        [&] { unordered = runManyJobs(sims, jobs); });
    double parallel_s = wallSeconds(
        [&] { parallel = runMany(cfgs, specs, jobs); });

    bool identical = serial == parallel && serial == unordered;
    if (!identical)
        std::fprintf(stderr,
                     "ERROR: parallel results differ from serial!\n");

    std::uint64_t events = 0;
    for (const auto &m : serial)
        events += m.sim_events;

    double eq_rate = eventQueueEventsPerSec();
    double speedup = parallel_s > 0 ? serial_s / parallel_s : 0.0;
    double ordering_gain =
        parallel_s > 0 ? unordered_s / parallel_s : 0.0;

    std::FILE *f = std::fopen(out_path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"schema_version\": 1,\n"
                 "  \"bench\": \"runner_speedup\",\n"
                 "  \"host_cores\": %u,\n"
                 "  \"jobs\": %u,\n"
                 "  \"cells\": %zu,\n"
                 "  \"workload_scale\": %g,\n"
                 "  \"serial_wall_s\": %.6f,\n"
                 "  \"parallel_unordered_wall_s\": %.6f,\n"
                 "  \"parallel_wall_s\": %.6f,\n"
                 "  \"speedup\": %.3f,\n"
                 "  \"ordering_gain\": %.3f,\n"
                 "  \"sim_events\": %llu,\n"
                 "  \"serial_events_per_s\": %.0f,\n"
                 "  \"parallel_events_per_s\": %.0f,\n"
                 "  \"eventqueue_events_per_s\": %.0f,\n"
                 "  \"identical_results\": %s\n"
                 "}\n",
                 cores, jobs, cfgs.size() * specs.size(), scale,
                 serial_s, unordered_s, parallel_s, speedup,
                 ordering_gain, (unsigned long long)events,
                 serial_s > 0 ? events / serial_s : 0.0,
                 parallel_s > 0 ? events / parallel_s : 0.0, eq_rate,
                 identical ? "true" : "false");
    std::fclose(f);

    std::printf("serial   %.3fs\nparallel %.3fs index-order, "
                "%.3fs longest-first (%u jobs, gain %.2fx)\n"
                "speedup  %.2fx\nevents/s %.3g serial, %.3g parallel\n"
                "eventqueue %.3g events/s\nwrote %s\n",
                serial_s, unordered_s, parallel_s, jobs,
                ordering_gain, speedup,
                serial_s > 0 ? events / serial_s : 0.0,
                parallel_s > 0 ? events / parallel_s : 0.0, eq_rate,
                out_path.c_str());
    return identical ? 0 : 1;
}
