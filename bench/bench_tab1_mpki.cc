/**
 * @file
 * Table I: the benchmark suite's L2 TLB MPKI under the baseline.
 *
 * We report the measured MPKI of each synthetic app model next to the
 * paper's value. Absolute numbers differ (our runs are short, so
 * compulsory misses weigh more, and the apps are synthetic models);
 * what must hold is the low / mid / high banding and the ordering.
 */

#include "bench/common.hh"

using namespace barre;
using namespace barre::bench;

int
main(int argc, char **argv)
{
    (void)argc;
    (void)argv;
    ResultStore store;
    std::vector<NamedConfig> configs{{"baseline",
                                      SystemConfig::baselineAts()}};
    const auto &apps = standardSuite();
    const auto specs = soloSpecs(apps);
    runAll(store, configs, specs, envScale());

    TextTable table({"app", "full name", "class", "paper MPKI",
                     "measured MPKI"});
    for (const auto &app : apps) {
        const RunMetrics *m = store.get("baseline", app.name);
        table.addRow({app.name, app.full_name, app.category,
                      fmt(app.paper_mpki), m ? fmt(m->l2_mpki) : "-"});
    }
    table.print("Table I: L2 TLB MPKI per application");
    std::printf("\npaper: classes low (<1), mid (2.27-46.9), high "
                "(>174); banding and ordering should hold.\n");
    return 0;
}
