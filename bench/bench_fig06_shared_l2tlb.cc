/**
 * @file
 * Fig 6: oracle package-shared L2 TLB (4x entries/bandwidth, no added
 * latency) vs private per-chiplet L2 TLBs.
 *
 * Paper shape: only ~6% average speedup, under half the apps improve -
 * advanced page mapping already removed most sharable translations, so
 * TLB sharing alone cannot be the answer.
 */

#include "bench/common.hh"

using namespace barre;
using namespace barre::bench;

int
main(int argc, char **argv)
{
    ResultStore store;
    SystemConfig priv = SystemConfig::baselineAts();
    SystemConfig shared = priv;
    shared.shared_l2_tlb = true;

    std::vector<NamedConfig> configs{{"private", priv},
                                     {"shared-oracle", shared}};
    (void)argc;
    (void)argv;
    const auto &apps = standardSuite();
    const auto specs = soloSpecs(apps);
    runAll(store, configs, specs, envScale());

    store.printSpeedupTable("Fig 6: oracle shared L2 TLB", "private",
                            {"shared-oracle"}, specs);
    std::printf("\npaper: ~1.06x average; fewer than half the apps "
                "improve.\n");
    return 0;
}
