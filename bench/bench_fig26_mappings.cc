/**
 * @file
 * Fig 26: Barre Chord under other page-mapping policies: round-robin,
 * kernel-wide chunking, and CODA.
 * Paper: 1.25x / 1.48x / 1.62x average speedups - Barre Chord is
 * mapping-policy agnostic as long as data spreads across chiplets.
 */

#include "bench/common.hh"

using namespace barre;
using namespace barre::bench;

int
main(int argc, char **argv)
{
    ResultStore store;
    std::vector<NamedConfig> configs;
    auto add = [&](MappingPolicyKind k, const std::string &tag) {
        SystemConfig base = SystemConfig::baselineAts();
        base.driver.policy = k;
        SystemConfig fb = SystemConfig::fbarreCfg(2);
        fb.driver.policy = k;
        configs.push_back({"base-" + tag, base});
        configs.push_back({"fbarre-" + tag, fb});
    };
    add(MappingPolicyKind::round_robin, "rr");
    add(MappingPolicyKind::chunking, "chunk");
    add(MappingPolicyKind::coda, "coda");

    (void)argc;
    (void)argv;
    const auto &apps = standardSuite();
    const auto specs = soloSpecs(apps);
    runAll(store, configs, specs, envScale());

    TextTable table({"app", "round-robin", "chunking", "CODA"});
    std::map<std::string, std::vector<double>> per;
    for (const auto &app : apps) {
        std::vector<std::string> row{app.name};
        for (const char *tag : {"rr", "chunk", "coda"}) {
            const RunMetrics *b =
                store.get("base-" + std::string(tag), app.name);
            const RunMetrics *f =
                store.get("fbarre-" + std::string(tag), app.name);
            double s = static_cast<double>(b->runtime) /
                       static_cast<double>(f->runtime);
            per[tag].push_back(s);
            row.push_back(fmt(s));
        }
        table.addRow(std::move(row));
    }
    std::vector<std::string> gm{"geomean"};
    for (const char *tag : {"rr", "chunk", "coda"})
        gm.push_back(fmt(geomean(per[tag])));
    table.addRow(std::move(gm));
    table.print("Fig 26: Barre Chord speedup under other mappings");
    std::printf("\npaper: 1.25x round-robin, 1.48x chunking, 1.62x "
                "CODA.\n");
    return 0;
}
