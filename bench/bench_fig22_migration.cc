/**
 * @file
 * Fig 22: Barre Chord under runtime page migration (ACUD [7],
 * threshold 16). Paper: 1.20x average over plain ACUD.
 *
 * Runs on the native bench::runAll() harness (parallel across host
 * cores, deterministic output) like the other figure benches.
 */

#include "bench/common.hh"

using namespace barre;
using namespace barre::bench;

int
main(int argc, char **argv)
{
    ResultStore store;
    SystemConfig acud = SystemConfig::baselineAts();
    acud.migration.enabled = true;
    acud.migration.threshold = 16;
    SystemConfig acud_bc = SystemConfig::fbarreCfg(2);
    acud_bc.migration.enabled = true;
    acud_bc.migration.threshold = 16;

    std::vector<NamedConfig> configs{{"ACUD", acud},
                                     {"ACUD+BarreChord", acud_bc}};
    (void)argc;
    (void)argv;
    const auto specs = soloSpecs(standardSuite());
    runAll(store, configs, specs, envScale());

    store.printSpeedupTable("Fig 22: Barre Chord under page migration",
                            "ACUD", {"ACUD+BarreChord"}, specs);
    std::printf("\npaper: 1.20x average over ACUD.\n");
    return 0;
}
