/**
 * @file
 * Fig 21: Barre Chord on the GMMU-integrated platform (MGvm [41]).
 *
 * Paper: Barre Chord improves MGvm by 1.28x on average and removes over
 * 30% of the remote page-table walks.
 */

#include "bench/common.hh"

using namespace barre;
using namespace barre::bench;

int
main(int argc, char **argv)
{
    (void)argc;
    (void)argv;
    ResultStore store;
    SystemConfig mgvm = SystemConfig::baselineAts();
    mgvm.use_gmmu = true;
    SystemConfig mgvm_bc = SystemConfig::fbarreCfg(2);
    mgvm_bc.use_gmmu = true;

    std::vector<NamedConfig> configs{{"MGvm", mgvm},
                                     {"MGvm+BarreChord", mgvm_bc}};
    const auto &apps = standardSuite();
    const auto specs = soloSpecs(apps);
    runAll(store, configs, specs, envScale());

    TextTable table({"app", "speedup", "remote-walk -%"});
    std::vector<double> speed, rw;
    for (const auto &app : apps) {
        const RunMetrics *b = store.get("MGvm", app.name);
        const RunMetrics *f = store.get("MGvm+BarreChord", app.name);
        double s = static_cast<double>(b->runtime) /
                   static_cast<double>(f->runtime);
        double drop =
            b->gmmu_remote_walks
                ? 100.0 * (1.0 - static_cast<double>(
                                     f->gmmu_remote_walks) /
                                     b->gmmu_remote_walks)
                : 0;
        speed.push_back(s);
        rw.push_back(drop);
        table.addRow({app.name, fmt(s), fmt(drop, 1)});
    }
    double rw_mean = 0;
    for (double x : rw)
        rw_mean += x;
    rw_mean /= static_cast<double>(rw.size());
    table.addRow({"geomean/avg", fmt(geomean(speed)), fmt(rw_mean, 1)});
    table.print("Fig 21: MGvm vs MGvm + Barre Chord");
    std::printf("\npaper: 1.28x average speedup; >30%% fewer remote "
                "walks.\n");
    return 0;
}
