/**
 * @file
 * Multi-tenant churn benchmark: the scenario engine under load, one
 * row per (policy config, tenant count, churn rate) cell.
 *
 * Each cell runs a seeded-Poisson churn scenario (fixed seed, so every
 * cell is reproducible) through the F-Barre flagship config plus the
 * ASID-aware policy variants:
 *
 *   - fbarre:          shared L2 TLB ways, FIFO page-walker queue;
 *   - fbarre+tlb_part: per-tenant static way partitioning in every
 *                      L2 TLB (chiplet.l2_tlb.asid_partitions);
 *   - fbarre+fair_pw:  per-tenant fair page-walker scheduling at the
 *                      IOMMU (iommu.fair_pw_sched) instead of FIFO.
 *
 * Reported per tenant: runtime, slowdown versus the same application
 * running alone on the same config (the multi-tenant interference
 * cost), and translation-latency percentiles (p50/p95/p99). The
 * largest cell of every config additionally runs twice — tagged
 * serial (sim_domains=1) and partitioned (chiplets+1 domains) — and
 * the bench exits non-zero unless the two are bitwise identical
 * (metrics row, per-tenant rows, per-tag firing digests).
 *
 *   build/bench/bench_tenants [out.json]   # default BENCH_tenants.json
 *   build/bench/bench_tenants --smoke      # small grid, no file writes
 *
 * $BARRE_SCALE scales the workload; $BARRE_JOBS caps harness workers
 * for the solo-reference runs.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "bench/common.hh"
#include "harness/csv.hh"
#include "harness/pool.hh"
#include "harness/system.hh"
#include "workloads/suite.hh"

using namespace barre;
using namespace barre::bench;

namespace
{

constexpr std::uint64_t churn_seed = 7;

double
wallSeconds(const std::function<void()> &fn)
{
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

struct RunOut
{
    double wall = 0;
    RunMetrics m;
    std::string csv;
    std::vector<std::string> tenant_rows;
    std::vector<std::uint64_t> digests;
};

RunOut
runOne(SystemConfig cfg, const ScenarioSpec &spec, std::uint32_t domains,
       std::uint32_t threads, double scale)
{
    cfg.workload_scale = scale;
    cfg.sim_domains = domains;
    cfg.sim_threads = threads;

    System sys(std::move(cfg));
    sys.loadScenario(spec);

    RunOut out;
    out.wall = wallSeconds([&] { out.m = sys.run(); });
    out.m.app = spec.label();
    out.csv = csvRow(out.m);
    for (const TenantMetrics &t : out.m.tenants)
        out.tenant_rows.push_back(tenantCsvRow(t));
    if (const TaggedEngine *eng = sys.eventQueue().taggedEngine())
        out.digests = eng->fireDigests();
    return out;
}

/** The ASID-aware policy columns this bench compares. */
std::vector<NamedConfig>
benchConfigs()
{
    std::vector<NamedConfig> out;
    out.push_back({"fbarre", SystemConfig::fbarreCfg(2)});

    SystemConfig part = SystemConfig::fbarreCfg(2);
    // 16 ways per set carved into 4 static per-tenant slices.
    part.chiplet.l2_tlb.asid_partitions = 4;
    out.push_back({"fbarre+tlb_part", part});

    SystemConfig fair = SystemConfig::fbarreCfg(2);
    fair.iommu.fair_pw_sched = true;
    out.push_back({"fbarre+fair_pw", fair});
    return out;
}

/** One tenant's row with its interference cost attached. */
struct TenantOut
{
    TenantMetrics t;
    double slowdown = 0; ///< runtime / solo runtime, same config
};

struct Cell
{
    std::string config;
    std::uint32_t tenants = 0;
    double churn = 0;
    RunOut part;                  ///< the partitioned (default) run
    std::vector<TenantOut> rows;  ///< pid order
    bool checked_identity = false;
    bool identical = false;

    double
    slowdownMean() const
    {
        if (rows.empty())
            return 0;
        double s = 0;
        for (const TenantOut &r : rows)
            s += r.slowdown;
        return s / static_cast<double>(rows.size());
    }
    double
    slowdownMax() const
    {
        double s = 0;
        for (const TenantOut &r : rows)
            s = std::max(s, r.slowdown);
        return s;
    }
    std::uint64_t
    p99Max() const
    {
        std::uint64_t v = 0;
        for (const TenantOut &r : rows)
            v = std::max(v, r.t.lat_p99);
        return v;
    }
};

/**
 * Solo-reference runtimes per (config, app) — the denominator of the
 * slowdown column. Computed once per config over the union of apps the
 * deterministic schedules actually draw, via runMany so the reference
 * sweep uses the host cores.
 */
std::map<std::string, Tick>
soloRuntimes(const NamedConfig &nc, const std::set<std::string> &apps,
             double scale)
{
    std::vector<ScenarioSpec> specs;
    for (const std::string &name : apps)
        specs.push_back(ScenarioSpec::solo(name));
    NamedConfig scaled = nc;
    scaled.cfg.workload_scale = scale;
    const auto ms = runMany({scaled}, specs);
    std::map<std::string, Tick> out;
    std::size_t i = 0;
    for (const std::string &name : apps)
        out[name] = ms[i++].runtime;
    return out;
}

bool
writeTenantsJson(const std::string &path, const std::vector<Cell> &cells,
                 double scale)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::fprintf(f,
                 "{\n"
                 "  \"schema_version\": 1,\n"
                 "  \"workload_scale\": %g,\n"
                 "  \"churn_seed\": %llu,\n"
                 "  \"cells\": [\n",
                 scale, static_cast<unsigned long long>(churn_seed));
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const Cell &c = cells[i];
        std::fprintf(
            f,
            "    {\n"
            "      \"config\": \"%s\",\n"
            "      \"tenants\": %u,\n"
            "      \"churn_rate\": %g,\n"
            "      \"runtime\": %llu,\n"
            "      \"wall_s\": %.6f,\n"
            "      \"sim_events\": %llu,\n"
            "      \"slowdown_mean\": %.4f,\n"
            "      \"slowdown_max\": %.4f,\n"
            "      \"lat_p99_max\": %llu,\n",
            c.config.c_str(), c.tenants, c.churn,
            static_cast<unsigned long long>(c.part.m.runtime),
            c.part.wall,
            static_cast<unsigned long long>(c.part.m.sim_events),
            c.slowdownMean(), c.slowdownMax(),
            static_cast<unsigned long long>(c.p99Max()));
        if (c.checked_identity)
            std::fprintf(f, "      \"identical_results\": %s,\n",
                         c.identical ? "true" : "false");
        std::fprintf(f, "      \"tenant_rows\": [\n");
        for (std::size_t j = 0; j < c.rows.size(); ++j) {
            const TenantOut &r = c.rows[j];
            std::fprintf(
                f,
                "        {\"app\": \"%s\", \"pid\": %u, "
                "\"arrival\": %llu, \"runtime\": %llu, "
                "\"slowdown\": %.4f, \"lat_p50\": %llu, "
                "\"lat_p95\": %llu, \"lat_p99\": %llu, "
                "\"peak_l2_tlb\": %llu}%s\n",
                r.t.app.c_str(), r.t.pid,
                static_cast<unsigned long long>(r.t.arrival),
                static_cast<unsigned long long>(r.t.runtime()),
                r.slowdown,
                static_cast<unsigned long long>(r.t.lat_p50),
                static_cast<unsigned long long>(r.t.lat_p95),
                static_cast<unsigned long long>(r.t.lat_p99),
                static_cast<unsigned long long>(r.t.peak_l2_tlb),
                j + 1 < c.rows.size() ? "," : "");
        }
        std::fprintf(f, "      ]\n    }%s\n",
                     i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string out_path = "BENCH_tenants.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else
            out_path = argv[i];
    }

    const double scale = smoke ? 0.02 : envScale(0.1);
    const std::vector<std::uint32_t> tenant_grid =
        smoke ? std::vector<std::uint32_t>{8}
              : std::vector<std::uint32_t>{16, 64};
    const std::vector<double> churn_grid =
        smoke ? std::vector<double>{2.0} : std::vector<double>{0.5, 2.0};
    // The identity proof runs on each config's hardest cell.
    const std::uint32_t flagship_tenants = tenant_grid.back();
    const double flagship_churn = churn_grid.back();

    std::vector<Cell> cells;
    bool all_identical = true;
    for (const NamedConfig &nc : benchConfigs()) {
        const std::uint32_t domains = nc.cfg.chiplets + 1;
        const std::uint32_t threads = std::min<std::uint32_t>(
            ThreadPool::defaultWorkers(), domains);

        // Union of apps the deterministic schedules draw -> solo refs.
        std::set<std::string> apps;
        for (std::uint32_t n : tenant_grid)
            for (double churn : churn_grid)
                for (const ResolvedTenant &t :
                     ScenarioSpec::poisson(n, churn, churn_seed)
                         .resolve())
                    apps.insert(t.app.name);
        const auto solo = soloRuntimes(nc, apps, scale);

        for (std::uint32_t n : tenant_grid) {
            for (double churn : churn_grid) {
                const ScenarioSpec spec =
                    ScenarioSpec::poisson(n, churn, churn_seed);
                std::fprintf(stderr,
                             "tenants bench: %s, %u tenants, churn "
                             "%.2g, scale %.3g%s\n",
                             nc.name.c_str(), n, churn, scale,
                             smoke ? " (smoke)" : "");

                Cell c;
                c.config = nc.name;
                c.tenants = n;
                c.churn = churn;
                c.part = runOne(nc.cfg, spec, domains, threads, scale);

                if (n == flagship_tenants && churn == flagship_churn) {
                    const RunOut serial =
                        runOne(nc.cfg, spec, 1, 1, scale);
                    c.checked_identity = true;
                    c.identical =
                        serial.csv == c.part.csv &&
                        serial.tenant_rows == c.part.tenant_rows &&
                        serial.digests == c.part.digests;
                    if (!c.identical) {
                        all_identical = false;
                        std::fprintf(stderr,
                                     "ERROR: %s %u-tenant churn run "
                                     "differs between tagged serial "
                                     "and partitioned!\n",
                                     nc.name.c_str(), n);
                    }
                }

                for (const TenantMetrics &t : c.part.m.tenants) {
                    TenantOut r;
                    r.t = t;
                    const auto it = solo.find(t.app);
                    if (it != solo.end() && it->second > 0)
                        r.slowdown =
                            static_cast<double>(t.runtime()) /
                            static_cast<double>(it->second);
                    c.rows.push_back(std::move(r));
                }
                cells.push_back(std::move(c));
            }
        }
    }

    TextTable table({"config", "tenants", "churn", "runtime",
                     "slow-mean", "slow-max", "p99-max", "identity"});
    for (const Cell &c : cells) {
        table.addRow({c.config, std::to_string(c.tenants),
                      fmt(c.churn, 2),
                      std::to_string(c.part.m.runtime),
                      fmt(c.slowdownMean(), 3), fmt(c.slowdownMax(), 3),
                      std::to_string(c.p99Max()),
                      !c.checked_identity ? "-"
                      : c.identical       ? "bitwise"
                                          : "BROKEN"});
    }
    table.print("Multi-tenant churn (slowdown vs solo, tail latency)");

    if (!smoke) {
        if (!writeTenantsJson(out_path, cells, scale))
            std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        else
            std::printf("wrote %s\n", out_path.c_str());
    }
    return all_identical ? 0 : 1;
}
