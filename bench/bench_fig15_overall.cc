/**
 * @file
 * Fig 15: overall performance comparison.
 *
 * Columns: Valkyrie [8], Least [27], Barre, F-Barre-NoMerge,
 * F-Barre-2Merge, F-Barre-4Merge, over the plain-ATS baseline.
 *
 * Paper shape: Barre beats Valkyrie/Least by ~10-12.8%; F-Barre-NoMerge
 * reaches 1.36x over Least; 2/4-way merging scales further (1.34x /
 * 1.53x over F-Barre-NoMerge on average).
 */

#include "bench/common.hh"

using namespace barre;
using namespace barre::bench;

int
main(int argc, char **argv)
{
    ResultStore store;
    SystemConfig fb1 = SystemConfig::fbarreCfg(1);
    SystemConfig fb2 = SystemConfig::fbarreCfg(2);
    SystemConfig fb4 = SystemConfig::fbarreCfg(4);
    std::vector<NamedConfig> configs{
        {"baseline", SystemConfig::baselineAts()},
        {"Valkyrie", SystemConfig::valkyrieCfg()},
        {"Least", SystemConfig::leastCfg()},
        {"Barre", SystemConfig::barreCfg()},
        {"F-Barre-NoMerge", fb1},
        {"F-Barre-2Merge", fb2},
        {"F-Barre-4Merge", fb4},
    };
    (void)argc;
    (void)argv;
    const auto &apps = standardSuite();
    const auto specs = soloSpecs(apps);
    runAll(store, configs, specs, envScale());

    store.printSpeedupTable(
        "Fig 15: overall performance", "baseline",
        {"Valkyrie", "Least", "Barre", "F-Barre-NoMerge",
         "F-Barre-2Merge", "F-Barre-4Merge"},
        specs);
    store.printSpeedupTable(
        "Fig 15 (paper normalization)", "Least",
        {"Barre", "F-Barre-NoMerge", "F-Barre-2Merge",
         "F-Barre-4Merge"},
        specs);
    std::printf("\npaper: Barre ~1.128x over Least; F-Barre-NoMerge "
                "1.36x over Least; 2/4-merge add 1.34x/1.53x over "
                "F-Barre-NoMerge.\n");
    return 0;
}
