/**
 * @file
 * Fig 5: distribution of the VPN gap between consecutive translation
 * requests arriving at the IOMMU, private vs (hypothetical) shared L2
 * TLBs.
 *
 * Paper shape: private L2 TLBs produce many more large, irregular gaps
 * (scattered spikes), defeating stride prefetchers.
 *
 * Cells need a per-run IOMMU probe (setVpnProbe), so this bench builds
 * its Systems directly and fans the cells out over a ThreadPool — each
 * cell samples into its own histogram slot, keeping the results
 * deterministic and independent of the worker count.
 */

#include <array>
#include <cstdio>
#include <vector>

#include "bench/common.hh"
#include "harness/pool.hh"
#include "harness/system.hh"

using namespace barre;
using namespace barre::bench;

namespace
{

struct GapHist
{
    // Buckets: |gap| of 1, 2-7, 8-63, 64-511, 512+.
    std::array<std::uint64_t, 5> bins{};
    Vpn last = invalid_vpn;

    void
    sample(Vpn vpn)
    {
        if (last != invalid_vpn) {
            std::uint64_t gap = vpn > last ? vpn - last : last - vpn;
            std::size_t b = gap <= 1 ? 0
                            : gap < 8 ? 1
                            : gap < 64 ? 2
                            : gap < 512 ? 3
                                        : 4;
            ++bins[b];
        }
        last = vpn;
    }
};

GapHist
runWithHist(SystemConfig cfg, const AppParams &app, double scale)
{
    cfg.workload_scale *= scale;
    GapHist hist;
    System sys(std::move(cfg));
    sys.iommu().setVpnProbe([&](Vpn v) { hist.sample(v); });
    sys.loadScenario(ScenarioSpec::solo(app.name));
    sys.run();
    return hist;
}

} // namespace

int
main(int argc, char **argv)
{
    (void)argc;
    (void)argv;
    double scale = envScale();
    std::vector<AppParams> apps{appByName("cov"), appByName("atax"),
                                appByName("matr"), appByName("spmv")};

    // Cell layout: app-major, [private, shared] per app.
    std::vector<std::array<GapHist, 2>> hists(apps.size());
    ThreadPool pool;
    pool.parallelFor(apps.size() * 2, [&](std::size_t i) {
        const std::size_t a = i / 2;
        if (i % 2 == 0) {
            hists[a][0] = runWithHist(SystemConfig::baselineAts(),
                                      apps[a], scale);
        } else {
            SystemConfig cfg = SystemConfig::baselineAts();
            cfg.shared_l2_tlb = true;
            hists[a][1] = runWithHist(cfg, apps[a], scale);
        }
    });

    TextTable table({"app", "tlb", "gap=1", "2-7", "8-63", "64-511",
                     "512+"});
    for (std::size_t a = 0; a < apps.size(); ++a) {
        const auto &pair = hists[a];
        const char *labels[2] = {"private", "shared"};
        for (int i = 0; i < 2; ++i) {
            double total = 0;
            for (auto b : pair[i].bins)
                total += static_cast<double>(b);
            std::vector<std::string> row{apps[a].name, labels[i]};
            for (auto b : pair[i].bins)
                row.push_back(fmt(total ? 100.0 * b / total : 0, 1) +
                              "%");
            table.addRow(std::move(row));
        }
    }
    table.print("Fig 5: VPN gap distribution at the IOMMU");
    std::printf("\npaper: private TLBs shift mass to large irregular "
                "gaps; shared smooths the stream.\n");
    return 0;
}
