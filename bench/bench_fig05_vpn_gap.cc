/**
 * @file
 * Fig 5: distribution of the VPN gap between consecutive translation
 * requests arriving at the IOMMU, private vs (hypothetical) shared L2
 * TLBs.
 *
 * Paper shape: private L2 TLBs produce many more large, irregular gaps
 * (scattered spikes), defeating stride prefetchers.
 */

#include <benchmark/benchmark.h>

#include <cinttypes>
#include <cmath>
#include <map>

#include "bench/common.hh"

using namespace barre;
using namespace barre::bench;

namespace
{

struct GapHist
{
    // Buckets: |gap| of 1, 2-7, 8-63, 64-511, 512+.
    std::array<std::uint64_t, 5> bins{};
    Vpn last = invalid_vpn;

    void
    sample(Vpn vpn)
    {
        if (last != invalid_vpn) {
            std::uint64_t gap = vpn > last ? vpn - last : last - vpn;
            std::size_t b = gap <= 1 ? 0
                            : gap < 8 ? 1
                            : gap < 64 ? 2
                            : gap < 512 ? 3
                                        : 4;
            ++bins[b];
        }
        last = vpn;
    }
};

GapHist
runWithHist(SystemConfig cfg, const AppParams &app, double scale)
{
    cfg.workload_scale *= scale;
    GapHist hist;
    System sys(cfg);
    sys.iommu().setVpnProbe([&](Vpn v) { hist.sample(v); });
    auto allocs = sys.allocate(app, 1);
    sys.loadWorkload(app, allocs);
    sys.run();
    return hist;
}

std::map<std::string, std::array<GapHist, 2>> g_hists;

} // namespace

int
main(int argc, char **argv)
{
    double scale = envScale();
    std::vector<AppParams> apps{appByName("cov"), appByName("atax"),
                                appByName("matr"), appByName("spmv")};
    for (const auto &app : apps) {
        benchmark::RegisterBenchmark(
            ("private/" + app.name).c_str(),
            [app, scale](benchmark::State &state) {
                for (auto _ : state) {
                    g_hists[app.name][0] = runWithHist(
                        SystemConfig::baselineAts(), app, scale);
                }
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
        benchmark::RegisterBenchmark(
            ("shared/" + app.name).c_str(),
            [app, scale](benchmark::State &state) {
                for (auto _ : state) {
                    SystemConfig cfg = SystemConfig::baselineAts();
                    cfg.shared_l2_tlb = true;
                    g_hists[app.name][1] = runWithHist(cfg, app, scale);
                }
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
    int rc = runBenchmarks(argc, argv);
    if (rc != 0)
        return rc;

    TextTable table({"app", "tlb", "gap=1", "2-7", "8-63", "64-511",
                     "512+"});
    for (const auto &app : apps) {
        const auto &pair = g_hists[app.name];
        const char *labels[2] = {"private", "shared"};
        for (int i = 0; i < 2; ++i) {
            double total = 0;
            for (auto b : pair[i].bins)
                total += static_cast<double>(b);
            std::vector<std::string> row{app.name, labels[i]};
            for (auto b : pair[i].bins)
                row.push_back(fmt(total ? 100.0 * b / total : 0, 1) +
                              "%");
            table.addRow(std::move(row));
        }
    }
    table.print("Fig 5: VPN gap distribution at the IOMMU");
    std::printf("\npaper: private TLBs shift mass to large irregular "
                "gaps; shared smooths the stream.\n");
    return 0;
}
