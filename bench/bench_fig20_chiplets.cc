/**
 * @file
 * Fig 20: F-Barre speedup on 2/4/8/16-chiplet MCM-GPUs.
 *
 * Paper: 1.54x / 1.86x / 2.04x / 2.31x; st2d, matr, gups, spmv scale
 * almost linearly because F-Barre relieves the growing PCIe and PTW
 * contention.
 */

#include "bench/common.hh"

using namespace barre;
using namespace barre::bench;

int
main(int argc, char **argv)
{
    (void)argc;
    (void)argv;
    ResultStore store;
    // The paper highlights these plus low/mid picks; keep the sweep
    // affordable with a class-balanced subset.
    std::vector<AppParams> apps{appByName("pr"),   appByName("cov"),
                                appByName("st2d"), appByName("matr"),
                                appByName("gups"), appByName("spmv")};
    const auto specs = soloSpecs(apps);
    for (std::uint32_t n : {2u, 4u, 8u, 16u}) {
        SystemConfig base = SystemConfig::baselineAts();
        base.chiplets = n;
        SystemConfig fb = SystemConfig::fbarreCfg(n <= 4 ? 2 : 1);
        fb.chiplets = n;
        // Weak scaling: keep the per-chiplet load constant, so larger
        // packages put proportionally more pressure on the shared PCIe
        // and PTWs (the contention Fig 20 is about).
        double scale = envScale() * (static_cast<double>(n) / 4.0);
        runAll(store,
               {{"base-" + std::to_string(n), base},
                {"fbarre-" + std::to_string(n), fb}},
               specs, scale);
    }

    TextTable table({"app", "2-chip", "4-chip", "8-chip", "16-chip"});
    std::map<std::string, std::vector<double>> per_n;
    for (const auto &app : apps) {
        std::vector<std::string> row{app.name};
        for (std::uint32_t n : {2u, 4u, 8u, 16u}) {
            const RunMetrics *b =
                store.get("base-" + std::to_string(n), app.name);
            const RunMetrics *f =
                store.get("fbarre-" + std::to_string(n), app.name);
            double s = static_cast<double>(b->runtime) /
                       static_cast<double>(f->runtime);
            per_n[std::to_string(n)].push_back(s);
            row.push_back(fmt(s));
        }
        table.addRow(std::move(row));
    }
    std::vector<std::string> gm{"geomean"};
    for (std::uint32_t n : {2u, 4u, 8u, 16u})
        gm.push_back(fmt(geomean(per_n[std::to_string(n)])));
    table.addRow(std::move(gm));
    table.print("Fig 20: F-Barre speedup vs chiplet count");
    std::printf("\npaper: 1.54x / 1.86x / 2.04x / 2.31x for 2/4/8/16 "
                "chiplets.\n");
    return 0;
}
