/**
 * @file
 * Fig 2: 2 MB super pages under runtime migration, vs 4 KB pages.
 *
 * Paper shape: several apps gain a little, but migration-heavy apps
 * (fwt, matr) drop significantly - a 2 MB migration ping-pongs far more
 * data and coarsens placement, inflating remote accesses.
 */

#include "bench/common.hh"

using namespace barre;
using namespace barre::bench;

int
main(int argc, char **argv)
{
    ResultStore store;
    SystemConfig small = SystemConfig::baselineAts();
    small.migration.enabled = true;
    SystemConfig super = small;
    super.page_size = PageSize::size2m;

    std::vector<NamedConfig> configs{{"4KB+mig", small},
                                     {"2MB+mig", super}};
    (void)argc;
    (void)argv;
    const auto &apps = standardSuite();
    const auto specs = soloSpecs(apps);
    runAll(store, configs, specs, envScale());

    store.printSpeedupTable(
        "Fig 2: 2MB super page speedup under migration", "4KB+mig",
        {"2MB+mig"}, specs);
    std::printf("\npaper: fwt and matr drop well below 1x; average is "
                "modest.\n");
    return 0;
}
