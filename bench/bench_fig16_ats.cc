/**
 * @file
 * Fig 16: ATS handling efficiency.
 *  (a) average ATS processing-time reduction (Barre -12.6%, F-Barre
 *      -28% in the paper),
 *  (b) fraction of IOMMU translations served by PEC calculation
 *      (Barre 58%, F-Barre 32% - lower for F-Barre because most
 *      coalescing happens inside the package),
 *  (c) ATS packet-traffic reduction (F-Barre -53% avg, up to -99%).
 */

#include "bench/common.hh"

using namespace barre;
using namespace barre::bench;

int
main(int argc, char **argv)
{
    ResultStore store;
    std::vector<NamedConfig> configs{
        {"baseline", SystemConfig::baselineAts()},
        {"Barre", SystemConfig::barreCfg()},
        {"F-Barre", SystemConfig::fbarreCfg(2)},
    };
    (void)argc;
    (void)argv;
    const auto &apps = standardSuite();
    const auto specs = soloSpecs(apps);
    runAll(store, configs, specs, envScale());

    TextTable table({"app", "ats-time -% (Barre)", "ats-time -% (F-B)",
                     "coalesced% (Barre)", "coalesced% (F-B)",
                     "traffic -% (F-B)"});
    std::vector<double> dt_b, dt_f, co_b, co_f, tr_f;
    for (const auto &app : apps) {
        const RunMetrics *base = store.get("baseline", app.name);
        const RunMetrics *b = store.get("Barre", app.name);
        const RunMetrics *f = store.get("F-Barre", app.name);
        auto pct = [](double x) { return 100.0 * x; };
        double tb = base->avg_ats_time > 0
                        ? pct(1.0 - b->avg_ats_time / base->avg_ats_time)
                        : 0;
        double tf = base->avg_ats_time > 0
                        ? pct(1.0 - f->avg_ats_time / base->avg_ats_time)
                        : 0;
        double cb = b->ats_packets
                        ? pct(static_cast<double>(b->iommu_coalesced) /
                              b->ats_packets)
                        : 0;
        double cf = f->ats_packets
                        ? pct(static_cast<double>(f->iommu_coalesced) /
                              f->ats_packets)
                        : 0;
        double rf = base->ats_packets
                        ? pct(1.0 - static_cast<double>(f->ats_packets) /
                                        base->ats_packets)
                        : 0;
        dt_b.push_back(tb);
        dt_f.push_back(tf);
        co_b.push_back(cb);
        co_f.push_back(cf);
        tr_f.push_back(rf);
        table.addRow({app.name, fmt(tb, 1), fmt(tf, 1), fmt(cb, 1),
                      fmt(cf, 1), fmt(rf, 1)});
    }
    auto mean = [](const std::vector<double> &v) {
        double s = 0;
        for (double x : v)
            s += x;
        return s / static_cast<double>(v.size());
    };
    table.addRow({"average", fmt(mean(dt_b), 1), fmt(mean(dt_f), 1),
                  fmt(mean(co_b), 1), fmt(mean(co_f), 1),
                  fmt(mean(tr_f), 1)});
    table.print("Fig 16: ATS processing time / coalescing / traffic");
    std::printf("\npaper: (a) -12.6%% / -28%%; (b) 58%% / 32%%; (c) "
                "-53%% avg (up to -99%%).\n");
    return 0;
}
