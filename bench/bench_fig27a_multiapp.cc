/**
 * @file
 * Fig 27a: Barre Chord under GPU multi-programming. Pairs of apps with
 * different IOMMU intensities run concurrently with fine-grained
 * CTA-level sharing. Paper: +17% average; Mid-Mid peaks at +34.7%.
 */

#include <cstdio>
#include <functional>
#include <vector>

#include "bench/common.hh"

using namespace barre;
using namespace barre::bench;

namespace
{

struct Pair
{
    std::string label;
    std::string a, b;
};

} // namespace

int
main(int argc, char **argv)
{
    (void)argc;
    (void)argv;
    double scale = envScale();
    // One representative pair per intensity combination.
    std::vector<Pair> pairs{
        {"Low-Low", "fft", "pr"},     {"Low-Mid", "pr", "cov"},
        {"Low-High", "fft", "matr"},  {"Mid-Mid", "cov", "atax"},
        {"Mid-High", "atax", "gups"}, {"High-High", "matr", "bicg"},
    };

    // Jobs are (pair, config) cells, config-minor: index 2*p + cfg.
    std::vector<std::function<RunMetrics()>> sims;
    for (const auto &p : pairs) {
        for (int cfg_idx = 0; cfg_idx < 2; ++cfg_idx) {
            sims.push_back([p, cfg_idx, scale] {
                SystemConfig cfg = cfg_idx == 0
                                       ? SystemConfig::baselineAts()
                                       : SystemConfig::fbarreCfg(2);
                cfg.workload_scale = scale;
                return runScenario(cfg, ScenarioSpec::pair(p.a, p.b));
            });
        }
    }
    std::vector<RunMetrics> results = runManyJobs(sims);

    TextTable table({"pair", "apps", "F-Barre speedup"});
    std::vector<double> speed;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
        const Pair &p = pairs[i];
        const RunMetrics &base = results[2 * i];
        const RunMetrics &fb = results[2 * i + 1];
        std::fprintf(stderr, "%-9s %-10s %14llu vs %14llu cycles\n",
                     p.label.c_str(), (p.a + "+" + p.b).c_str(),
                     (unsigned long long)base.runtime,
                     (unsigned long long)fb.runtime);
        double s = static_cast<double>(base.runtime) /
                   static_cast<double>(fb.runtime);
        speed.push_back(s);
        table.addRow({p.label, p.a + "+" + p.b, fmt(s)});
    }
    table.addRow({"geomean", "-", fmt(geomean(speed))});
    table.print("Fig 27a: multi-programmed pairs");
    std::printf("\npaper: +17%% average; Mid-Mid highest (+34.7%%); "
                "Low-Low and High-High smallest.\n");
    return 0;
}
