/**
 * @file
 * Fig 27a: Barre Chord under GPU multi-programming. Pairs of apps with
 * different IOMMU intensities run concurrently with fine-grained
 * CTA-level sharing. Paper: +17% average; Mid-Mid peaks at +34.7%.
 */

#include <benchmark/benchmark.h>

#include <map>

#include "bench/common.hh"

using namespace barre;
using namespace barre::bench;

namespace
{

struct Pair
{
    std::string label;
    std::string a, b;
};

std::map<std::string, std::array<RunMetrics, 2>> g_results;

} // namespace

int
main(int argc, char **argv)
{
    double scale = envScale();
    // One representative pair per intensity combination.
    std::vector<Pair> pairs{
        {"Low-Low", "fft", "pr"},     {"Low-Mid", "pr", "cov"},
        {"Low-High", "fft", "matr"},  {"Mid-Mid", "cov", "atax"},
        {"Mid-High", "atax", "gups"}, {"High-High", "matr", "bicg"},
    };

    for (const auto &p : pairs) {
        for (int cfg_idx = 0; cfg_idx < 2; ++cfg_idx) {
            std::string cname = cfg_idx == 0 ? "baseline" : "fbarre";
            benchmark::RegisterBenchmark(
                (cname + "/" + p.label).c_str(),
                [p, cfg_idx, scale](benchmark::State &state) {
                    for (auto _ : state) {
                        SystemConfig cfg =
                            cfg_idx == 0 ? SystemConfig::baselineAts()
                                         : SystemConfig::fbarreCfg(2);
                        cfg.workload_scale = scale;
                        RunMetrics m = runApps(
                            cfg, {appByName(p.a), appByName(p.b)});
                        g_results[p.label][cfg_idx] = m;
                        state.counters["sim_cycles"] =
                            static_cast<double>(m.runtime);
                    }
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
    int rc = runBenchmarks(argc, argv);
    if (rc != 0)
        return rc;

    TextTable table({"pair", "apps", "F-Barre speedup"});
    std::vector<double> speed;
    for (const auto &p : pairs) {
        const auto &r = g_results[p.label];
        double s = static_cast<double>(r[0].runtime) /
                   static_cast<double>(r[1].runtime);
        speed.push_back(s);
        table.addRow({p.label, p.a + "+" + p.b, fmt(s)});
    }
    table.addRow({"geomean", "-", fmt(geomean(speed))});
    table.print("Fig 27a: multi-programmed pairs");
    std::printf("\npaper: +17%% average; Mid-Mid highest (+34.7%%); "
                "Low-Low and High-High smallest.\n");
    return 0;
}
