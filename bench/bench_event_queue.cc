/**
 * @file
 * Microbenchmark for the two-level EventQueue front (DESIGN.md):
 * ladder/calendar mode vs the pure-heap backstop, under the two delay
 * distributions that bracket simulator behaviour:
 *
 *   - "iommu-burst": the translation pipeline's real mix — dense 1-64
 *     cycle NoC/TLB/queue hops, same-tick continuations, 500-cycle walk
 *     completions and rare 20k-cycle fault services. Almost everything
 *     lands in the ladder window; this is the case the calendar front
 *     exists for.
 *   - "uniform-horizon": delays uniform over a 16k-tick horizon, so
 *     most events overflow to the heap — the ladder's worst case; it
 *     must not lose here.
 *
 * Both modes run the same seeded workload; the bench asserts they fire
 * the same number of events and finish at the same tick (the cheap
 * half of the differential test in tests/sim/event_queue_diff_test.cc).
 * An end-to-end section runs a full F-Barre system both ways, checks
 * the RunMetrics are bitwise identical, and reports simulated events/s.
 *
 *   build/bench/bench_event_queue [out.json]   # default BENCH_runner.json
 *   build/bench/bench_event_queue --smoke      # small, no file writes
 *
 * The JSON is *merged* into the runner self-benchmark's file: if
 * out.json already ends in a top-level object (bench_runner_speedup's
 * output), an "event_queue" member is spliced in before the closing
 * brace so one file tracks the whole perf trajectory.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>

#include "bench/common.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"

using namespace barre;
using namespace barre::bench;

namespace
{

double
wallSeconds(const std::function<void()> &fn)
{
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

/** The translation pipeline's delay mix (see file comment). */
Tick
iommuBurstDelay(Rng &rng)
{
    const std::uint64_t r = rng.below(100);
    if (r < 50)
        return 1 + rng.below(8); // NoC / TLB pipeline hops
    if (r < 75)
        return 10 + rng.below(54); // queue + link serialization
    if (r < 90)
        return 0; // same-tick continuations
    if (r < 99)
        return 500; // page-walk completion
    return 20000; // demand-paging fault service
}

/** Uniform over a horizon far wider than the ladder window. */
Tick
uniformHorizonDelay(Rng &rng)
{
    return rng.below(16384);
}

/**
 * Self-rescheduling chains: every fired event draws the next delay and
 * reschedules itself, like a CU slot or walker re-arming. The capture
 * is one pointer, so scheduling stays on the InlineFn inline path.
 */
struct Load
{
    EventQueue eq;
    Rng rng;
    std::uint64_t count = 0;
    std::uint64_t target;
    Tick (*next_delay)(Rng &);

    Load(QueueMode mode, std::uint64_t target, Tick (*delay)(Rng &))
        : eq(mode), rng(0x0ddba11), target(target), next_delay(delay)
    {}

    void
    beat()
    {
        if (++count >= target)
            return;
        eq.scheduleAfter(next_delay(rng), [this] { beat(); });
    }

    /** Seed the chains, drain the queue, return wall seconds. */
    double
    run(std::uint64_t chains)
    {
        for (std::uint64_t c = 0; c < chains; ++c)
            eq.scheduleAfter(next_delay(rng), [this] { beat(); });
        return wallSeconds([&] { eq.run(); });
    }
};

struct Rates
{
    double ladder_eps = 0;
    double heap_eps = 0;
    bool identical = false;

    double
    ratio() const
    {
        return heap_eps > 0 ? ladder_eps / heap_eps : 0.0;
    }
};

Rates
compare(std::uint64_t events, Tick (*delay)(Rng &))
{
    constexpr std::uint64_t kChains = 64;
    Load ladder(QueueMode::ladder, events, delay);
    Load heap(QueueMode::heap_only, events, delay);
    const double ladder_s = ladder.run(kChains);
    const double heap_s = heap.run(kChains);
    Rates r;
    r.ladder_eps = ladder_s > 0 ? ladder.eq.fired() / ladder_s : 0.0;
    r.heap_eps = heap_s > 0 ? heap.eq.fired() / heap_s : 0.0;
    // The two modes must be observationally identical; the full
    // firing-order proof lives in tests/sim/event_queue_diff_test.cc.
    r.identical = ladder.eq.fired() == heap.eq.fired() &&
                  ladder.eq.now() == heap.eq.now();
    return r;
}

/** Full-system events/s, ladder vs heap, with RunMetrics equality. */
Rates
endToEnd(double scale)
{
    SystemConfig cfg = SystemConfig::fbarreCfg(2);
    cfg.workload_scale = scale;
    SystemConfig heap_cfg = cfg;
    heap_cfg.heap_only_queue = true;
    const ScenarioSpec spec = ScenarioSpec::solo("cov");

    RunMetrics lm, hm;
    const double ladder_s =
        wallSeconds([&] { lm = runScenario(cfg, spec); });
    const double heap_s =
        wallSeconds([&] { hm = runScenario(heap_cfg, spec); });
    Rates r;
    r.ladder_eps = ladder_s > 0 ? lm.sim_events / ladder_s : 0.0;
    r.heap_eps = heap_s > 0 ? hm.sim_events / heap_s : 0.0;
    r.identical = lm == hm;
    return r;
}

/**
 * Splice "event_queue": {...} into @p path. An existing file (the
 * runner self-benchmark's object) gets the member inserted before its
 * final closing brace; otherwise a fresh object is written.
 */
bool
mergeJson(const std::string &path, const std::string &member)
{
    std::string existing;
    if (std::FILE *in = std::fopen(path.c_str(), "r")) {
        char buf[4096];
        std::size_t n;
        while ((n = std::fread(buf, 1, sizeof buf, in)) > 0)
            existing.append(buf, n);
        std::fclose(in);
    }
    std::string out;
    const std::size_t brace = existing.rfind('}');
    if (brace != std::string::npos) {
        out = existing.substr(0, brace);
        while (!out.empty() &&
               (out.back() == '\n' || out.back() == ' '))
            out.pop_back();
        // Replace a previous event_queue member wholesale on re-runs.
        const std::size_t prev = out.rfind(",\n  \"event_queue\":");
        if (prev != std::string::npos)
            out.erase(prev);
        out += ",\n  \"event_queue\": " + member + "\n}\n";
    } else {
        out = "{\n  \"schema_version\": 1,\n  \"event_queue\": " +
              member + "\n}\n";
    }
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string out_path = "BENCH_runner.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else
            out_path = argv[i];
    }

    const std::uint64_t events = smoke ? 300'000 : 4'000'000;
    const double scale = smoke ? 0.02 : envScale(0.1);

    std::fprintf(stderr,
                 "event-queue bench: %llu events/distribution%s\n",
                 (unsigned long long)events, smoke ? " (smoke)" : "");

    const Rates burst = compare(events, iommuBurstDelay);
    const Rates uniform = compare(events, uniformHorizonDelay);
    const Rates e2e = endToEnd(scale);

    std::printf("iommu-burst     ladder %.3g ev/s, heap %.3g ev/s "
                "(%.2fx)\n",
                burst.ladder_eps, burst.heap_eps, burst.ratio());
    std::printf("uniform-horizon ladder %.3g ev/s, heap %.3g ev/s "
                "(%.2fx)\n",
                uniform.ladder_eps, uniform.heap_eps, uniform.ratio());
    std::printf("end-to-end      ladder %.3g ev/s, heap %.3g ev/s "
                "(%.2fx), metrics %s\n",
                e2e.ladder_eps, e2e.heap_eps, e2e.ratio(),
                e2e.identical ? "identical" : "DIFFER");

    const bool ok = burst.identical && uniform.identical &&
                    e2e.identical;
    if (!ok)
        std::fprintf(stderr, "ERROR: ladder and heap-only modes "
                             "disagree!\n");

    if (!smoke) {
        char member[512];
        std::snprintf(
            member, sizeof member,
            "{\n"
            "    \"events_per_distribution\": %llu,\n"
            "    \"iommu_burst_ladder_eps\": %.0f,\n"
            "    \"iommu_burst_heap_eps\": %.0f,\n"
            "    \"iommu_burst_speedup\": %.3f,\n"
            "    \"uniform_horizon_ladder_eps\": %.0f,\n"
            "    \"uniform_horizon_heap_eps\": %.0f,\n"
            "    \"uniform_horizon_speedup\": %.3f,\n"
            "    \"end_to_end_ladder_eps\": %.0f,\n"
            "    \"end_to_end_heap_eps\": %.0f,\n"
            "    \"end_to_end_speedup\": %.3f,\n"
            "    \"identical_results\": %s\n"
            "  }",
            (unsigned long long)events, burst.ladder_eps,
            burst.heap_eps, burst.ratio(), uniform.ladder_eps,
            uniform.heap_eps, uniform.ratio(), e2e.ladder_eps,
            e2e.heap_eps, e2e.ratio(), ok ? "true" : "false");
        if (!mergeJson(out_path, member)) {
            std::fprintf(stderr, "cannot write %s\n",
                         out_path.c_str());
            return 1;
        }
        std::printf("wrote %s\n", out_path.c_str());
    }
    return ok ? 0 : 1;
}
