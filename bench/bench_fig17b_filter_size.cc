/**
 * @file
 * Fig 17b: F-Barre speedup with 512- and 1024-row cuckoo filters,
 * normalized to 256 rows. Paper: +3% / +6% on average.
 */

#include "bench/common.hh"

using namespace barre;
using namespace barre::bench;

int
main(int argc, char **argv)
{
    ResultStore store;
    std::vector<NamedConfig> configs;
    for (std::uint32_t rows : {256u, 512u, 1024u}) {
        SystemConfig cfg = SystemConfig::fbarreCfg(2);
        cfg.fbarre.filter.rows = rows;
        configs.push_back({std::to_string(rows) + "-row", cfg});
    }
    (void)argc;
    (void)argv;
    const auto &apps = standardSuite();
    const auto specs = soloSpecs(apps);
    runAll(store, configs, specs, envScale());

    store.printSpeedupTable("Fig 17b: filter size sensitivity",
                            "256-row", {"512-row", "1024-row"}, specs);
    std::printf("\npaper: +3%% with 512 rows, +6%% with 1024 rows.\n");
    return 0;
}
