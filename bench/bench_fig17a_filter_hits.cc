/**
 * @file
 * Fig 17a: F-Barre filter accuracy - remote hit rate (probes a peer
 * could actually serve) and LCF true-positive rate.
 *
 * Paper: 75.3% remote hit rate, 98.4% local (LCF) hit rate; RCFs are
 * lower because the best-effort updates can be stale.
 */

#include "bench/common.hh"

using namespace barre;
using namespace barre::bench;

int
main(int argc, char **argv)
{
    ResultStore store;
    std::vector<NamedConfig> configs{{"F-Barre",
                                      SystemConfig::fbarreCfg(2)}};
    (void)argc;
    (void)argv;
    const auto &apps = standardSuite();
    const auto specs = soloSpecs(apps);
    runAll(store, configs, specs, envScale());

    TextTable table({"app", "remote probes", "remote hit %",
                     "LCF positives", "LCF true-positive %"});
    std::vector<double> remote_rates, local_rates;
    for (const auto &app : apps) {
        const RunMetrics *m = store.get("F-Barre", app.name);
        double rhit = m->remote_probes
                          ? 100.0 * m->remote_hits / m->remote_probes
                          : 0;
        double lhit = m->lcf_positives
                          ? 100.0 * m->lcf_true_positives /
                                m->lcf_positives
                          : 0;
        if (m->remote_probes > 0)
            remote_rates.push_back(rhit);
        if (m->lcf_positives > 0)
            local_rates.push_back(lhit);
        table.addRow({app.name, std::to_string(m->remote_probes),
                      fmt(rhit, 1), std::to_string(m->lcf_positives),
                      fmt(lhit, 1)});
    }
    auto mean = [](const std::vector<double> &v) {
        double s = 0;
        for (double x : v)
            s += x;
        return v.empty() ? 0 : s / static_cast<double>(v.size());
    };
    table.addRow({"average", "-", fmt(mean(remote_rates), 1), "-",
                  fmt(mean(local_rates), 1)});
    table.print("Fig 17a: remote (RCF) and local (LCF) filter hits");
    std::printf("\npaper: 75.3%% remote, 98.4%% local.\n");
    return 0;
}
