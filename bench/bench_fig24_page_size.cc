/**
 * @file
 * Fig 24: F-Barre with 64 KB and 2 MB pages.
 * Left: original inputs (paper: +2.5% / +0.12% - footprints are small
 * relative to the enlarged pages). Right: inputs scaled 16x on a
 * class-balanced subset (paper: +67% / +2%).
 */

#include "bench/common.hh"

using namespace barre;
using namespace barre::bench;

namespace
{

void
sweep(ResultStore &store, const std::string &suffix,
      const std::vector<AppParams> &apps, double scale,
      std::uint64_t mem_per_chiplet)
{
    std::vector<NamedConfig> configs;
    for (PageSize ps : {PageSize::size4k, PageSize::size64k,
                        PageSize::size2m}) {
        std::string tag = ps == PageSize::size4k    ? "4K"
                          : ps == PageSize::size64k ? "64K"
                                                    : "2M";
        SystemConfig base = SystemConfig::baselineAts();
        base.page_size = ps;
        base.mem_bytes_per_chiplet = mem_per_chiplet;
        SystemConfig fb = SystemConfig::fbarreCfg(2);
        fb.page_size = ps;
        fb.mem_bytes_per_chiplet = mem_per_chiplet;
        configs.push_back({"base-" + tag + suffix, base});
        configs.push_back({"fbarre-" + tag + suffix, fb});
    }
    runAll(store, configs, soloSpecs(apps), scale);
}

void
printPanel(const ResultStore &store, const std::string &title,
           const std::string &suffix, const std::vector<AppParams> &apps)
{
    TextTable table({"app", "4KB", "64KB", "2MB"});
    std::map<std::string, std::vector<double>> per;
    for (const auto &app : apps) {
        std::vector<std::string> row{app.name};
        for (const char *tag : {"4K", "64K", "2M"}) {
            const RunMetrics *b =
                store.get("base-" + std::string(tag) + suffix, app.name);
            const RunMetrics *f = store.get(
                "fbarre-" + std::string(tag) + suffix, app.name);
            double s = static_cast<double>(b->runtime) /
                       static_cast<double>(f->runtime);
            per[tag].push_back(s);
            row.push_back(fmt(s));
        }
        table.addRow(std::move(row));
    }
    std::vector<std::string> gm{"geomean"};
    for (const char *tag : {"4K", "64K", "2M"})
        gm.push_back(fmt(geomean(per[tag])));
    table.addRow(std::move(gm));
    table.print(title);
}

} // namespace

int
main(int argc, char **argv)
{
    ResultStore store;
    double scale = envScale();

    const auto &apps = standardSuite();
    sweep(store, "", apps, scale, std::uint64_t{2} << 30);

    // Right panel: 16x inputs on the class-balanced subset. More
    // memory per chiplet so the footprints fit.
    std::vector<AppParams> big;
    for (const auto &a : scaledSubset())
        big.push_back(a.scaled(16.0));
    sweep(store, "-16x", big, scale * 0.25,
          std::uint64_t{8} << 30);
    (void)argc;
    (void)argv;

    printPanel(store, "Fig 24 (left): F-Barre speedup vs page size", "",
               apps);
    printPanel(store,
               "Fig 24 (right): 16x inputs, class-balanced subset",
               "-16x", big);
    std::printf("\npaper: left +2.5%% (64KB) / +0.12%% (2MB); right "
                "+67%% / +2%%.\n");
    return 0;
}
