/**
 * @file
 * Fig 23: F-Barre speedup with 8 / 16 / 32 PTWs.
 * Paper: 2.12x / 1.86x / 1.51x - the benefit shrinks as raw PTW
 * parallelism grows, but stays substantial.
 */

#include "bench/common.hh"

using namespace barre;
using namespace barre::bench;

int
main(int argc, char **argv)
{
    ResultStore store;
    std::vector<NamedConfig> configs;
    for (std::uint32_t ptws : {8u, 16u, 32u}) {
        SystemConfig base = SystemConfig::baselineAts();
        base.iommu.ptws = ptws;
        SystemConfig fb = SystemConfig::fbarreCfg(2);
        fb.iommu.ptws = ptws;
        configs.push_back({"base-" + std::to_string(ptws), base});
        configs.push_back({"fbarre-" + std::to_string(ptws), fb});
    }
    (void)argc;
    (void)argv;
    const auto &apps = standardSuite();
    const auto specs = soloSpecs(apps);
    runAll(store, configs, specs, envScale());

    TextTable table({"app", "8 PTWs", "16 PTWs", "32 PTWs"});
    std::map<std::string, std::vector<double>> per_p;
    for (const auto &app : apps) {
        std::vector<std::string> row{app.name};
        for (std::uint32_t p : {8u, 16u, 32u}) {
            const RunMetrics *b =
                store.get("base-" + std::to_string(p), app.name);
            const RunMetrics *f =
                store.get("fbarre-" + std::to_string(p), app.name);
            double s = static_cast<double>(b->runtime) /
                       static_cast<double>(f->runtime);
            per_p[std::to_string(p)].push_back(s);
            row.push_back(fmt(s));
        }
        table.addRow(std::move(row));
    }
    std::vector<std::string> gm{"geomean"};
    for (std::uint32_t p : {8u, 16u, 32u})
        gm.push_back(fmt(geomean(per_p[std::to_string(p)])));
    table.addRow(std::move(gm));
    table.print("Fig 23: F-Barre speedup vs PTW count");
    std::printf("\npaper: 2.12x / 1.86x / 1.51x with 8/16/32 PTWs.\n");
    return 0;
}
