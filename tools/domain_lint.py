#!/usr/bin/env python3
"""Static half of the domain-ownership analysis (sim/domain_guard.hh).

Every class defined in a simulated-hardware component directory must
declare which sequencing domain owns its instances, via a comment in
the block right above the class definition:

    // domain-owner:chiplet   owned by one chiplet's tag
    // domain-owner:host      owned by the host/IOMMU/driver tag
    // domain-owner:shared    a message path or immutable-after-setup
                              state; legitimately touched from any tag

On top of the annotations, member declarations are checked for direct
cross-ownership references: a host-owned class holding a pointer or
reference to a chiplet-owned component (or vice versa) is how code
bypasses the Link/message paths and mutates foreign state mid-epoch —
exactly what keeps a configuration off the partitionable set. Such a
member must be explicitly acknowledged:

    // domain-owner:chiplet domain-cross:sync — direct peeks; needs a
    // message path to partition.
    std::vector<Tlb *> l2_tlbs_;

`domain-cross:sync` documents a known synchronous crossing (it should
also appear in the dynamic audit's golden list); `domain-cross:message`
asserts every use goes over a Link/Interconnect/Pcie hop. A member-line
`domain-owner:<d>` overrides the referenced class's default ownership
for instance-level decisions (e.g. a host-bound copy of a chiplet
class). A line may opt out entirely with `lint-allow:domain-owner`.

Usage:
    domain_lint.py [--root DIR]          lint the repo's component dirs
    domain_lint.py [--root DIR] FILE...  lint just FILEs (fixture mode)

Exit status: 0 clean, 1 violations, 2 usage error.
"""

import argparse
import re
import sys
from pathlib import Path

# Directories whose classes model simulated hardware (or the host-side
# software the simulation schedules) and therefore have an owner.
COMPONENT_DIRS = [
    "src/tlb",
    "src/cache",
    "src/mem",
    "src/noc",
    "src/iommu",
    "src/core",
    "src/driver",
    "src/gpu",
    "src/baselines",
    "src/filters",
    "src/workloads",
]

OWNER_RE = re.compile(r"domain-owner:(host|chiplet|shared)\b")
CROSS_RE = re.compile(r"domain-cross:(message|sync)\b")
ALLOW_RE = re.compile(r"lint-allow:domain-owner\b")
CLASS_RE = re.compile(r"^class\s+(\w+)")
BAD_OWNER_RE = re.compile(r"domain-owner:(?!host\b|chiplet\b|shared\b)(\S+)")


def component_files(root):
    files = []
    for d in COMPONENT_DIRS:
        files.extend(sorted((root / d).glob("*.hh")))
    return files


def preceding_comment_block(lines, idx):
    """The contiguous // comment block right above lines[idx].

    A template<...> header between the comment and the declaration is
    skipped so annotated class templates work.
    """
    block = []
    j = idx - 1
    while j >= 0 and lines[j].lstrip().startswith("template"):
        j -= 1
    while j >= 0 and lines[j].lstrip().startswith("//"):
        block.append(lines[j])
        j -= 1
    return block


class DomainLint:
    def __init__(self, root):
        self.root = root
        self.violations = []
        # class name -> (owner, path, lineno)
        self.owners = {}

    def report(self, path, lineno, message):
        try:
            rel = path.relative_to(self.root)
        except ValueError:
            rel = path
        self.violations.append(f"{rel}:{lineno}: [domain-owner] {message}")

    # -- pass 1: class annotations ---------------------------------------

    def collect_owners(self, path, lines):
        for i, line in enumerate(lines):
            m = CLASS_RE.match(line)
            if not m or line.rstrip().endswith(";"):
                continue  # skip forward declarations
            name = m.group(1)
            block = preceding_comment_block(lines, i)
            block_text = "\n".join(block)
            if ALLOW_RE.search(block_text) or ALLOW_RE.search(line):
                continue
            bad = BAD_OWNER_RE.search(block_text)
            if bad:
                self.report(path, i + 1,
                            f"class {name}: unknown domain-owner "
                            f"'{bad.group(1)}' (want host, chiplet or "
                            f"shared)")
                continue
            owner = OWNER_RE.search(block_text)
            if not owner:
                self.report(path, i + 1,
                            f"class {name} has no // domain-owner: "
                            f"annotation (host, chiplet or shared) in "
                            f"the comment block above its definition")
                continue
            self.owners[name] = (owner.group(1), path, i + 1)

    # -- pass 2: cross-ownership members ---------------------------------

    def check_members(self, path, lines):
        if not self.owners:
            return
        name_re = re.compile(
            r"\b(%s)\b" % "|".join(re.escape(n) for n in self.owners))
        holder = None
        holder_owner = None
        for i, line in enumerate(lines):
            m = CLASS_RE.match(line)
            if m and not line.rstrip().endswith(";"):
                holder = m.group(1)
                holder_owner = self.owners.get(holder, (None,))[0]
                continue
            if line.startswith("};"):
                holder = None
                continue
            if holder is None or holder_owner is None:
                continue
            stripped = line.strip()
            # Member declarations only: a terminated statement that
            # names another component class but is not a function
            # declaration/call or an access-specifier/comment line.
            if not stripped.endswith(";") or "(" in stripped:
                continue
            if stripped.startswith(("//", "*", "/*")):
                continue
            ref = name_re.search(stripped)
            if not ref or ref.group(1) == holder:
                continue
            context = stripped + "\n" + "\n".join(
                preceding_comment_block(lines, i))
            if ALLOW_RE.search(context):
                continue
            override = OWNER_RE.search(context)
            member_owner = (override.group(1) if override
                            else self.owners[ref.group(1)][0])
            if "shared" in (holder_owner, member_owner):
                continue
            if holder_owner == member_owner:
                continue
            if CROSS_RE.search(context):
                continue
            self.report(
                path, i + 1,
                f"class {holder} ({holder_owner}-owned) holds a direct "
                f"reference to {member_owner}-owned {ref.group(1)} "
                f"without a domain-cross:message|sync marker — either "
                f"route accesses over a Link/message path and say "
                f"domain-cross:message, or acknowledge the synchronous "
                f"crossing with domain-cross:sync (it must then appear "
                f"in the domain_audit golden)")

    def run(self, files):
        texts = {}
        for path in files:
            texts[path] = path.read_text().splitlines()
        for path, lines in texts.items():
            self.collect_owners(path, lines)
        for path, lines in texts.items():
            self.check_members(path, lines)
        return self.violations


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root",
                        default=Path(__file__).resolve().parent.parent,
                        help="repository root")
    parser.add_argument("files", nargs="*",
                        help="lint only these headers (fixture mode)")
    args = parser.parse_args()

    root = Path(args.root)
    if args.files:
        files = [Path(f) for f in args.files]
        missing = [f for f in files if not f.is_file()]
        if missing:
            print(f"domain_lint: no such file: {missing[0]}",
                  file=sys.stderr)
            return 2
    else:
        if not (root / "src").is_dir():
            print(f"domain_lint: {root} does not look like the repo "
                  f"root", file=sys.stderr)
            return 2
        files = component_files(root)

    violations = DomainLint(root).run(files)
    for v in violations:
        print(v)
    if violations:
        print(f"domain_lint: {len(violations)} violation(s)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
