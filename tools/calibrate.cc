/**
 * @file
 * Calibration helper (not installed): prints measured L2 TLB MPKI and
 * wall time per app under the baseline configuration.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "harness/experiment.hh"
#include "harness/sweep_io.hh"

using namespace barre;

int
main(int argc, char **argv)
{
    double scale = argc > 1 ? parseScaleArg(argv[1], "scale") : 1.0;
    std::printf("%-8s %-6s %10s %10s %12s %8s %9s %6s\n", "app", "cat",
                "paper", "measured", "runtime", "ats", "l2miss",
                "wall_s");
    for (const auto &app : standardSuite()) {
        SystemConfig cfg = SystemConfig::baselineAts();
        cfg.workload_scale = scale;
        auto t0 = std::chrono::steady_clock::now();
        RunMetrics m = runScenario(cfg, ScenarioSpec::solo(app.name));
        double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
        std::printf("%-8s %-6s %10.3f %10.3f %12llu %8llu %9llu %6.2f\n",
                    app.name.c_str(), app.category.c_str(),
                    app.paper_mpki, m.l2_mpki,
                    (unsigned long long)m.runtime,
                    (unsigned long long)m.ats_packets,
                    (unsigned long long)m.l2_tlb_misses, wall);
        std::fflush(stdout);
    }
    return 0;
}
