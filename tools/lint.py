#!/usr/bin/env python3
"""Repo-specific lint for the Barre Chord simulator.

Checks the properties the compiler cannot express but the simulator's
correctness story depends on:

  pragma-once      every header uses #pragma once (no ad-hoc guards).
  nondeterminism   no wall-clock or libc randomness in src/: results
                   must be bitwise reproducible across runs, machines,
                   and $BARRE_JOBS settings (std::rand, srand, time(),
                   system_clock, random_device, gettimeofday, ...).
  unordered-iter   no range-for over std::unordered_{map,set} in src/:
                   iteration order is implementation-defined and leaks
                   straight into stats/CSV output and event order.
  iostream-ban     no #include <iostream> outside tools/ and bench/;
                   sim code reports through sim/logging.hh so output
                   stays line-atomic under the parallel runner.
  naked-new        no naked new/delete in src/; ownership goes through
                   std::unique_ptr/containers.
  event-path-fn    no std::function in simulated-hardware code (src/
                   minus harness/ and workloads/): event callbacks are
                   sim/inline_fn.hh InlineFn so the per-event schedule
                   path never heap-allocates. std::function remains
                   fine in the host-side runner/pool infrastructure.
  domain-owner     tools/domain_lint.py: every simulated-hardware class
                   carries a // domain-owner:host|chiplet|shared
                   annotation and direct cross-ownership members carry
                   a domain-cross marker (the static half of the
                   sim/domain_guard.hh partition-safety analysis).

A line may opt out of one rule with a trailing `lint-allow:<rule>`
comment.  `--format-check` additionally runs clang-format in dry-run
mode over the tree (skipped with a notice when clang-format is not
installed; CI installs it).

Exit status: 0 clean, 1 violations, 2 usage/environment error.
"""

import argparse
import re
import shutil
import subprocess
import sys
from pathlib import Path

HEADER_GLOBS = ["src/**/*.hh", "bench/**/*.hh"]
CPP_GLOBS = [
    "src/**/*.hh", "src/**/*.cc",
    "tests/**/*.hh", "tests/**/*.cc",
    "bench/**/*.hh", "bench/**/*.cc",
    "tools/**/*.hh", "tools/**/*.cc",
    "examples/**/*.cpp",
]

# (rule, regex, message) applied to comment/string-stripped src/ code.
NONDETERMINISM = [
    (re.compile(r"\bstd::rand\b|(?<![\w:])s?rand\s*\("),
     "libc rand() is banned in sim code; use sim/rng.hh (seeded, "
     "deterministic)"),
    (re.compile(r"(?<![\w:.])time\s*\("),
     "wall-clock time() is banned in sim code; simulations must be "
     "reproducible"),
    (re.compile(r"\bsystem_clock\b"),
     "std::chrono::system_clock is banned in sim code; results must "
     "not depend on wall-clock time"),
    (re.compile(r"\brandom_device\b"),
     "std::random_device is banned in sim code; seed sim/rng.hh "
     "deterministically"),
    (re.compile(r"\bgettimeofday\b|\bclock_gettime\b"),
     "wall-clock syscalls are banned in sim code"),
]

ALLOW_RE = re.compile(r"lint-allow:([\w-]+)")

STRING_OR_COMMENT_RE = re.compile(
    r'//[^\n]*'
    r'|/\*.*?\*/'
    r'|"(?:[^"\\\n]|\\.)*"'
    r"|'(?:[^'\\\n]|\\.)*'",
    re.DOTALL,
)


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving newlines."""
    def blank(m):
        return re.sub(r"[^\n]", " ", m.group(0))
    return STRING_OR_COMMENT_RE.sub(blank, text)


def allowed_rules(line):
    return set(ALLOW_RE.findall(line))


class Linter:
    def __init__(self, root):
        self.root = Path(root)
        self.violations = []

    def report(self, path, lineno, rule, message):
        rel = path.relative_to(self.root)
        self.violations.append(f"{rel}:{lineno}: [{rule}] {message}")

    def files(self, globs):
        seen = set()
        for pattern in globs:
            for path in sorted(self.root.glob(pattern)):
                if path.is_file() and path not in seen:
                    seen.add(path)
                    yield path

    # -- rules -----------------------------------------------------------

    def check_pragma_once(self):
        for path in self.files(HEADER_GLOBS):
            text = path.read_text()
            if "#pragma once" not in text:
                self.report(path, 1, "pragma-once",
                            "header must use #pragma once")
            if re.search(r"^#ifndef BARRE_\w+\s*\n#define BARRE_",
                         text, re.MULTILINE):
                self.report(path, 1, "pragma-once",
                            "replace the include guard with #pragma once")

    def check_nondeterminism(self):
        for path in self.files(["src/**/*.hh", "src/**/*.cc"]):
            raw_lines = path.read_text().splitlines()
            stripped = strip_comments_and_strings("\n".join(raw_lines))
            for lineno, line in enumerate(stripped.splitlines(), 1):
                raw = raw_lines[lineno - 1]
                for regex, message in NONDETERMINISM:
                    if regex.search(line) and \
                            "nondeterminism" not in allowed_rules(raw):
                        self.report(path, lineno, "nondeterminism",
                                    message)

    def check_unordered_iteration(self):
        decl_re = re.compile(
            r"unordered_(?:map|set)\s*<[^;{}]*?>\s*(\w+)\s*[;{=]",
            re.DOTALL)
        for path in self.files(["src/**/*.hh", "src/**/*.cc"]):
            raw_lines = path.read_text().splitlines()
            text = strip_comments_and_strings("\n".join(raw_lines))
            names = set(decl_re.findall(text))
            if not names:
                continue
            loop_re = re.compile(
                r"for\s*\([^;)]*:\s*\*?(?:this->)?(%s)\s*\)"
                % "|".join(re.escape(n) for n in names))
            for lineno, line in enumerate(text.splitlines(), 1):
                m = loop_re.search(line)
                if m and "unordered-iter" not in \
                        allowed_rules(raw_lines[lineno - 1]):
                    self.report(
                        path, lineno, "unordered-iter",
                        f"range-for over unordered container "
                        f"'{m.group(1)}': iteration order is "
                        f"nondeterministic; iterate a sorted copy or "
                        f"use an ordered container")

    def check_iostream(self):
        for path in self.files(["src/**/*.hh", "src/**/*.cc",
                                "tests/**/*.cc", "examples/**/*.cpp"]):
            for lineno, line in enumerate(
                    path.read_text().splitlines(), 1):
                if re.match(r"\s*#\s*include\s*<iostream>", line) and \
                        "iostream-ban" not in allowed_rules(line):
                    self.report(
                        path, lineno, "iostream-ban",
                        "#include <iostream> is only allowed under "
                        "tools/ and bench/; use sim/logging.hh or "
                        "<cstdio>")

    def check_naked_new(self):
        new_re = re.compile(r"(?<![\w.>])new\s+[A-Za-z_:(]")
        delete_re = re.compile(r"(?<![\w.>])delete(\[\])?\s+[A-Za-z_:(*]")
        for path in self.files(["src/**/*.hh", "src/**/*.cc"]):
            raw_lines = path.read_text().splitlines()
            text = strip_comments_and_strings("\n".join(raw_lines))
            for lineno, line in enumerate(text.splitlines(), 1):
                raw = raw_lines[lineno - 1]
                if "naked-new" in allowed_rules(raw):
                    continue
                if new_re.search(line):
                    self.report(path, lineno, "naked-new",
                                "naked new in sim code; use "
                                "std::make_unique/containers")
                if delete_re.search(line):
                    self.report(path, lineno, "naked-new",
                                "naked delete in sim code; use "
                                "std::unique_ptr/containers")

    def check_event_path_function(self):
        fn_re = re.compile(r"\bstd\s*::\s*function\s*<")
        include_re = re.compile(r"#\s*include\s*<functional>")
        # Host-side infrastructure (the parallel runner, workload
        # generation) is not on the simulated event path.
        exempt = ("src/harness/", "src/workloads/")
        for path in self.files(["src/**/*.hh", "src/**/*.cc"]):
            rel = path.relative_to(self.root).as_posix()
            if rel.startswith(exempt):
                continue
            raw_lines = path.read_text().splitlines()
            text = strip_comments_and_strings("\n".join(raw_lines))
            for lineno, line in enumerate(text.splitlines(), 1):
                raw = raw_lines[lineno - 1]
                if "event-path-fn" in allowed_rules(raw):
                    continue
                if fn_re.search(line) or include_re.search(line):
                    self.report(
                        path, lineno, "event-path-fn",
                        "std::function on the event path; use "
                        "sim/inline_fn.hh InlineFn so scheduling "
                        "stays allocation-free")

    def check_domain_ownership(self):
        lint = self.root / "tools" / "domain_lint.py"
        if not lint.is_file():
            return
        proc = subprocess.run(
            [sys.executable, str(lint), "--root", str(self.root)],
            capture_output=True, text=True)
        self.violations.extend(
            line for line in proc.stdout.splitlines() if line.strip())
        if proc.returncode not in (0, 1):
            self.violations.append(
                f"[domain-owner] domain_lint.py failed "
                f"(exit {proc.returncode}): {proc.stderr.strip()}")

    # -- clang-format ----------------------------------------------------

    def check_format(self):
        binary = shutil.which("clang-format")
        if not binary:
            print("lint: clang-format not found; skipping format check",
                  file=sys.stderr)
            return
        files = [str(p) for p in self.files(CPP_GLOBS)]
        proc = subprocess.run(
            [binary, "--dry-run", "-Werror", "--style=file", *files],
            cwd=self.root, capture_output=True, text=True)
        if proc.returncode != 0:
            tail = proc.stderr.strip().splitlines()
            for line in tail[:40]:
                print(line, file=sys.stderr)
            self.violations.append(
                f"[format] clang-format --dry-run failed for the tree "
                f"({len(tail)} diagnostic lines)")

    def run(self, format_check=False):
        self.check_pragma_once()
        self.check_nondeterminism()
        self.check_unordered_iteration()
        self.check_iostream()
        self.check_naked_new()
        self.check_event_path_function()
        self.check_domain_ownership()
        if format_check:
            self.check_format()
        return self.violations


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=Path(__file__).resolve().parent
                        .parent, help="repository root to lint")
    parser.add_argument("--format-check", action="store_true",
                        help="also run clang-format --dry-run -Werror")
    args = parser.parse_args()

    root = Path(args.root)
    if not (root / "src").is_dir():
        print(f"lint: {root} does not look like the repo root",
              file=sys.stderr)
        return 2

    violations = Linter(root).run(format_check=args.format_check)
    for v in violations:
        print(v)
    if violations:
        print(f"lint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
