/**
 * @file
 * merge_csv - reassemble a sharded sweep into one canonical CSV.
 *
 *   sweep --shard 0/2 --out s0.csv     # host A
 *   sweep --shard 1/2 --out s1.csv     # host B
 *   merge_csv --out grid.csv s0.csv s1.csv
 *
 * Each shard file carries a manifest (shard id, grid signature, cell
 * count) written by `sweep --shard`. merge_csv validates that the
 * shards belong to the same sweep, that none is missing or duplicated,
 * and that every grid cell is covered, then writes the full grid in
 * canonical (config, app) order — byte-identical to the same sweep run
 * unsharded. Any inconsistency is fatal: a silently short result grid
 * is worse than no grid.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "harness/sweep_io.hh"
#include "sim/logging.hh"

using namespace barre;

int
main(int argc, char **argv)
{
    std::string out_file;
    std::vector<std::string> shard_files;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--out") {
            if (i + 1 >= argc)
                barre_fatal("--out needs a value");
            out_file = argv[++i];
        } else if (arg == "--help" || arg == "-h" ||
                   arg.rfind("--", 0) == 0) {
            std::fprintf(stderr,
                         "usage: merge_csv [--out FILE] "
                         "shard0.csv shard1.csv ...\n");
            return arg == "--help" || arg == "-h" ? 0 : 1;
        } else {
            shard_files.push_back(arg);
        }
    }
    if (shard_files.empty())
        barre_fatal("no shard files given (see --help)");

    std::vector<ShardFile> shards;
    for (const auto &path : shard_files) {
        std::ifstream is(path);
        if (!is)
            barre_fatal("cannot read %s", path.c_str());
        shards.push_back(readShardCsv(is, path));
    }

    std::string merged = mergeShards(shards);

    if (out_file.empty()) {
        std::cout << merged;
    } else {
        std::ofstream os(out_file);
        if (!os)
            barre_fatal("cannot write %s", out_file.c_str());
        os << merged;
        std::printf("merged %zu shards (%zu cells) into %s\n",
                    shards.size(), shards.front().total_cells,
                    out_file.c_str());
    }
    return 0;
}
