/**
 * @file
 * Compare two perf-trajectory JSON files (BENCH_runner.json and
 * friends) and flag regressions:
 *
 *   perf_diff [--threshold PCT] [--ignore-env] old.json new.json
 *
 * The files are the JSON objects our self-benchmarks write; members
 * are flattened to dotted keys ("pdes_speedup.partitioned_wall_s") and
 * classified by name. Array elements flatten under a stable segment:
 * the element's "name" member when it has one ("configs.fbarre..."),
 * else its "scheduler" member plus thread count ("runs.async@4..."),
 * else its index — so reordering a config list does not shuffle every
 * comparison. Key classes:
 *
 *   - throughput/speedup metrics (events_per_s, *_eps, speedup, gain):
 *     higher is better;
 *   - wall-clock metrics (*_wall_s, *_s): lower is better;
 *   - "identical_results" booleans: must be true in the new file;
 *   - everything else (cores, jobs, cells, scales): informational.
 *
 * Noise awareness: wall times on shared runners jitter, so a metric
 * only counts as a regression when it is worse by more than
 * --threshold percent (default 20). And two runs are only comparable
 * at all when they came from the same-shaped host — if any host_cores
 * or jobs member differs between the files, regressions (and missing
 * members, whose keys legitimately change when a thread sweep
 * shrinks with the host) are reported but downgraded to informational
 * (exit 0) unless --ignore-env forces them, so "CI got smaller" never
 * masquerades as "code got slower". Correctness flags
 * (identical_results) always gate.
 *
 * Schema gate: the writers stamp a top-level "schema_version" member.
 * Two files are only diffed when their schema versions match (a file
 * without the member counts as version 0); otherwise the comparison is
 * refused with exit 2 — regenerate the baseline rather than comparing
 * metrics whose meaning changed between schemas.
 *
 * Exit status: 0 = no regressions, 1 = regression (or a bench member
 * missing from the new file, or identical_results=false), 2 = usage,
 * parse, or schema-version error.
 */

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

namespace
{

struct Parser
{
    const std::string &s;
    std::size_t i = 0;
    bool ok = true;
    /** String members of the object currently being parsed, keyed by
     *  their flattened name. Used to label array elements. */
    std::map<std::string, std::string> strings;

    explicit Parser(const std::string &text) : s(text) {}

    void
    skipWs()
    {
        while (i < s.size() && std::isspace(static_cast<unsigned char>(
                                   s[i])))
            ++i;
    }

    bool
    expect(char c)
    {
        skipWs();
        if (i < s.size() && s[i] == c) {
            ++i;
            return true;
        }
        ok = false;
        return false;
    }

    std::string
    parseString()
    {
        if (!expect('"'))
            return "";
        std::string out;
        while (i < s.size() && s[i] != '"') {
            if (s[i] == '\\' && i + 1 < s.size())
                ++i; // our writers never escape, but stay safe
            out.push_back(s[i++]);
        }
        if (i < s.size())
            ++i; // closing quote
        else
            ok = false;
        return out;
    }

    /** Parse any JSON value at the cursor, flattening numeric/bool
     *  leaves into @p out under @p prefix. String leaves land in
     *  `strings` (they label array elements; they are not compared). */
    void
    parseValue(const std::string &prefix,
               std::map<std::string, double> &out)
    {
        skipWs();
        if (i >= s.size()) {
            ok = false;
            return;
        }
        if (s[i] == '{') {
            parseObject(prefix, out);
        } else if (s[i] == '[') {
            parseArray(prefix, out);
        } else if (s[i] == '"') {
            strings[prefix] = parseString();
        } else if (s.compare(i, 4, "true") == 0) {
            out[prefix] = 1.0;
            i += 4;
        } else if (s.compare(i, 5, "false") == 0) {
            out[prefix] = 0.0;
            i += 5;
        } else if (s.compare(i, 4, "null") == 0) {
            i += 4;
        } else {
            char *end = nullptr;
            const double v = std::strtod(s.c_str() + i, &end);
            if (end == s.c_str() + i) {
                ok = false;
                return;
            }
            out[prefix] = v;
            i = static_cast<std::size_t>(end - s.c_str());
        }
    }

    /** Parse an object, flattening numeric/bool members into @p out
     *  with dot-joined keys under @p prefix. */
    void
    parseObject(const std::string &prefix,
                std::map<std::string, double> &out)
    {
        if (!expect('{'))
            return;
        skipWs();
        if (i < s.size() && s[i] == '}') {
            ++i;
            return;
        }
        while (ok) {
            const std::string key = parseString();
            if (!expect(':'))
                return;
            const std::string full =
                prefix.empty() ? key : prefix + "." + key;
            parseValue(full, out);
            if (!ok)
                return;
            skipWs();
            if (i < s.size() && s[i] == ',') {
                ++i;
                continue;
            }
            expect('}');
            return;
        }
    }

    /** Parse an array, flattening each element under a stable key
     *  segment: the element's "name" member when present, else its
     *  "scheduler" member plus thread count, else the index. */
    void
    parseArray(const std::string &prefix,
               std::map<std::string, double> &out)
    {
        if (!expect('['))
            return;
        skipWs();
        if (i < s.size() && s[i] == ']') {
            ++i;
            return;
        }
        std::size_t idx = 0;
        while (ok) {
            // Parse the element into scratch maps so its key segment
            // can be derived from its own members before merging.
            std::map<std::string, double> elem;
            std::map<std::string, std::string> outer_strings;
            outer_strings.swap(strings);
            parseValue("", elem);
            std::string seg;
            if (auto it = strings.find("name"); it != strings.end()) {
                seg = it->second;
            } else if (auto sc = strings.find("scheduler");
                       sc != strings.end()) {
                seg = sc->second;
                if (auto th = elem.find("threads"); th != elem.end())
                    seg += "@" + std::to_string(
                                     static_cast<long>(th->second));
            }
            strings.swap(outer_strings);
            if (!ok)
                return;
            if (seg.empty())
                seg = std::to_string(idx);
            for (const auto &[k, v] : elem) {
                out[prefix + "." + seg + (k.empty() ? "" : "." + k)] =
                    v;
            }
            ++idx;
            skipWs();
            if (i < s.size() && s[i] == ',') {
                ++i;
                continue;
            }
            expect(']');
            return;
        }
    }
};

bool
readFile(const char *path, std::string &out)
{
    std::FILE *f = std::fopen(path, "r");
    if (!f)
        return false;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return true;
}

bool
contains(const std::string &key, const char *needle)
{
    return key.find(needle) != std::string::npos;
}

bool
endsWith(const std::string &key, const char *suffix)
{
    const std::size_t n = std::strlen(suffix);
    return key.size() >= n &&
           key.compare(key.size() - n, n, suffix) == 0;
}

enum class Kind
{
    higher_better,
    lower_better,
    must_be_true,
    env,
    info,
};

Kind
classify(const std::string &key)
{
    if (endsWith(key, "identical_results"))
        return Kind::must_be_true;
    if (endsWith(key, "host_cores") || endsWith(key, "jobs") ||
        endsWith(key, "threads") || endsWith(key, "domains"))
        return Kind::env;
    // Rates before the generic seconds suffix: "events_per_s" ends in
    // "_s" too but is a throughput, not a duration.
    if (contains(key, "events_per_s") || endsWith(key, "_eps") ||
        contains(key, "speedup") || contains(key, "gain"))
        return Kind::higher_better;
    if (endsWith(key, "_s") || contains(key, "wall"))
        return Kind::lower_better;
    return Kind::info;
}

} // namespace

int
main(int argc, char **argv)
{
    double threshold = 20.0;
    bool ignore_env = false;
    std::vector<const char *> files;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
            threshold = std::atof(argv[++i]);
        } else if (std::strcmp(argv[i], "--ignore-env") == 0) {
            ignore_env = true;
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr, "unknown option %s\n", argv[i]);
            return 2;
        } else {
            files.push_back(argv[i]);
        }
    }
    if (files.size() != 2) {
        std::fprintf(stderr,
                     "usage: perf_diff [--threshold PCT] "
                     "[--ignore-env] old.json new.json\n");
        return 2;
    }

    std::string old_text, new_text;
    if (!readFile(files[0], old_text)) {
        std::fprintf(stderr, "cannot read %s\n", files[0]);
        return 2;
    }
    if (!readFile(files[1], new_text)) {
        std::fprintf(stderr, "cannot read %s\n", files[1]);
        return 2;
    }

    std::map<std::string, double> old_vals, new_vals;
    Parser po(old_text);
    po.parseObject("", old_vals);
    Parser pn(new_text);
    pn.parseObject("", new_vals);
    if (!po.ok || !pn.ok || old_vals.empty() || new_vals.empty()) {
        std::fprintf(stderr, "malformed JSON input\n");
        return 2;
    }

    // Schema gate: files from different bench-schema generations are
    // not comparable — metric names/meanings may have changed.
    const auto schemaOf = [](const std::map<std::string, double> &vals) {
        const auto it = vals.find("schema_version");
        return it == vals.end() ? 0.0 : it->second;
    };
    const double old_schema = schemaOf(old_vals);
    const double new_schema = schemaOf(new_vals);
    if (old_schema != new_schema) {
        std::fprintf(stderr,
                     "schema_version mismatch: %s has %g, %s has %g — "
                     "refusing to compare across bench schemas; "
                     "regenerate the baseline with the current "
                     "benchmarks\n",
                     files[0], old_schema, files[1], new_schema);
        return 2;
    }

    // Environment guard: different host shapes are not comparable.
    bool env_mismatch = false;
    for (const auto &[key, ov] : old_vals) {
        if (classify(key) != Kind::env)
            continue;
        auto it = new_vals.find(key);
        if (it != new_vals.end() && it->second != ov) {
            std::printf("env      %-44s %g -> %g\n", key.c_str(), ov,
                        it->second);
            env_mismatch = true;
        }
    }

    int regressions = 0;
    int broken = 0;
    int missing = 0;
    for (const auto &[key, ov] : old_vals) {
        const Kind kind = classify(key);
        auto it = new_vals.find(key);
        if (it == new_vals.end()) {
            if (kind == Kind::higher_better ||
                kind == Kind::lower_better ||
                kind == Kind::must_be_true) {
                std::printf("MISSING  %s\n", key.c_str());
                ++missing;
            }
            continue;
        }
        const double nv = it->second;
        switch (kind) {
          case Kind::must_be_true:
            if (nv == 0.0) {
                std::printf("BROKEN   %s is false\n", key.c_str());
                ++broken;
            }
            break;
          case Kind::higher_better:
          case Kind::lower_better: {
            if (ov == 0.0)
                break; // no baseline signal
            const double delta_pct = 100.0 * (nv - ov) / ov;
            const bool worse = kind == Kind::higher_better
                                   ? delta_pct < -threshold
                                   : delta_pct > threshold;
            const bool better = kind == Kind::higher_better
                                    ? delta_pct > threshold
                                    : delta_pct < -threshold;
            const char *verdict = worse      ? "REGRESS"
                                  : better   ? "improve"
                                             : "ok";
            std::printf("%-8s %-44s %g -> %g (%+.1f%%)\n", verdict,
                        key.c_str(), ov, nv, delta_pct);
            if (worse)
                ++regressions;
            break;
          }
          case Kind::env:
          case Kind::info:
            break;
        }
    }

    // identical_results appearing only in the new file still gates.
    for (const auto &[key, nv] : new_vals) {
        if (classify(key) == Kind::must_be_true && nv == 0.0 &&
            old_vals.find(key) == old_vals.end()) {
            std::printf("BROKEN   %s is false\n", key.c_str());
            ++broken;
        }
    }

    // Correctness gates are immune to the noise/environment outs.
    if (broken > 0) {
        std::printf("%d correctness flag(s) broken\n", broken);
        return 1;
    }
    if (missing > 0) {
        // Thread-sweep members come and go with the host shape (a
        // 2-core runner records no @4 cells), so a disappearance only
        // gates when the environment matches.
        if (env_mismatch && !ignore_env) {
            std::printf("%d member(s) missing, but the host shape "
                        "changed — not comparable (use --ignore-env "
                        "to enforce)\n",
                        missing);
        } else {
            std::printf("%d benchmark member(s) disappeared\n",
                        missing);
            return 1;
        }
    }
    if (regressions > 0 && env_mismatch && !ignore_env) {
        std::printf("%d regression(s), but the host shape changed — "
                    "not comparable (use --ignore-env to enforce)\n",
                    regressions);
        return 0;
    }
    if (regressions > 0) {
        std::printf("%d regression(s) beyond %.0f%%\n", regressions,
                    threshold);
        return 1;
    }
    std::printf("no regressions beyond %.0f%%\n", threshold);
    return 0;
}
