/**
 * @file
 * sweep - run (configuration x application) grids and emit CSV.
 *
 *   sweep --modes baseline,fbarre --apps atax,matr,gups --out grid.csv
 *   sweep --modes baseline,barre,fbarre --scale 0.25
 *
 * Intended for plotting and for regression-diffing whole result grids.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/csv.hh"
#include "harness/experiment.hh"

using namespace barre;

namespace
{

std::vector<std::string>
split(const std::string &s)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string tok;
    while (std::getline(ss, tok, ','))
        if (!tok.empty())
            out.push_back(tok);
    return out;
}

SystemConfig
configFor(const std::string &mode)
{
    if (mode == "baseline")
        return SystemConfig::baselineAts();
    if (mode == "valkyrie")
        return SystemConfig::valkyrieCfg();
    if (mode == "least")
        return SystemConfig::leastCfg();
    if (mode == "barre")
        return SystemConfig::barreCfg();
    if (mode == "fbarre")
        return SystemConfig::fbarreCfg(2);
    if (mode == "fbarre4")
        return SystemConfig::fbarreCfg(4);
    barre_fatal("unknown mode '%s'", mode.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> modes{"baseline", "fbarre"};
    std::vector<std::string> apps;
    std::string out_file;
    double scale = 1.0;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                barre_fatal("%s needs a value", arg.c_str());
            return argv[++i];
        };
        if (arg == "--modes") {
            modes = split(next());
        } else if (arg == "--apps") {
            apps = split(next());
        } else if (arg == "--out") {
            out_file = next();
        } else if (arg == "--scale") {
            scale = std::atof(next().c_str());
        } else {
            std::fprintf(stderr,
                         "usage: sweep [--modes a,b] [--apps x,y] "
                         "[--scale F] [--out FILE]\n");
            return arg == "--help" || arg == "-h" ? 0 : 1;
        }
    }

    if (apps.empty())
        for (const auto &a : standardSuite())
            apps.push_back(a.name);

    std::vector<RunMetrics> rows;
    for (const auto &mode : modes) {
        for (const auto &name : apps) {
            SystemConfig cfg = configFor(mode);
            cfg.workload_scale = scale;
            RunMetrics m = runApp(cfg, appByName(name));
            std::fprintf(stderr, "%-9s %-6s %12llu cycles\n",
                         mode.c_str(), name.c_str(),
                         (unsigned long long)m.runtime);
            rows.push_back(std::move(m));
        }
    }

    if (out_file.empty()) {
        writeCsv(std::cout, rows);
    } else {
        std::ofstream os(out_file);
        if (!os)
            barre_fatal("cannot write %s", out_file.c_str());
        writeCsv(os, rows);
        std::printf("wrote %zu rows to %s\n", rows.size(),
                    out_file.c_str());
    }
    return 0;
}
