/**
 * @file
 * sweep - run (configuration x application) grids and emit CSV.
 *
 *   sweep --modes baseline,fbarre --apps atax,matr,gups --out grid.csv
 *   sweep --modes baseline,barre,fbarre --scale 0.25
 *   sweep --jobs 8            # explicit worker count (default: all
 *                             # cores, or $BARRE_JOBS; 1 = serial)
 *
 * Cells run in parallel via runMany(); output rows and CSV bytes are
 * identical regardless of the worker count.
 *
 * Intended for plotting and for regression-diffing whole result grids.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/csv.hh"
#include "harness/experiment.hh"

using namespace barre;

namespace
{

std::vector<std::string>
split(const std::string &s)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string tok;
    while (std::getline(ss, tok, ','))
        if (!tok.empty())
            out.push_back(tok);
    return out;
}

SystemConfig
configFor(const std::string &mode)
{
    if (mode == "baseline")
        return SystemConfig::baselineAts();
    if (mode == "valkyrie")
        return SystemConfig::valkyrieCfg();
    if (mode == "least")
        return SystemConfig::leastCfg();
    if (mode == "barre")
        return SystemConfig::barreCfg();
    if (mode == "fbarre")
        return SystemConfig::fbarreCfg(2);
    if (mode == "fbarre4")
        return SystemConfig::fbarreCfg(4);
    barre_fatal("unknown mode '%s'", mode.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> modes{"baseline", "fbarre"};
    std::vector<std::string> apps;
    std::string out_file;
    double scale = 1.0;
    unsigned jobs = 0; // 0 = $BARRE_JOBS / hardware concurrency

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                barre_fatal("%s needs a value", arg.c_str());
            return argv[++i];
        };
        if (arg == "--modes") {
            modes = split(next());
        } else if (arg == "--apps") {
            apps = split(next());
        } else if (arg == "--out") {
            out_file = next();
        } else if (arg == "--scale") {
            scale = std::atof(next().c_str());
        } else if (arg == "--jobs") {
            jobs = static_cast<unsigned>(std::atoi(next().c_str()));
        } else {
            std::fprintf(stderr,
                         "usage: sweep [--modes a,b] [--apps x,y] "
                         "[--scale F] [--jobs N] [--out FILE]\n");
            return arg == "--help" || arg == "-h" ? 0 : 1;
        }
    }

    if (apps.empty())
        for (const auto &a : standardSuite())
            apps.push_back(a.name);

    std::vector<NamedConfig> cfgs;
    for (const auto &mode : modes) {
        SystemConfig cfg = configFor(mode);
        cfg.workload_scale = scale;
        cfgs.push_back({mode, cfg});
    }
    std::vector<AppParams> app_params;
    for (const auto &name : apps)
        app_params.push_back(appByName(name));

    std::vector<RunMetrics> rows = runMany(cfgs, app_params, jobs);
    for (std::size_t m = 0; m < modes.size(); ++m) {
        for (std::size_t a = 0; a < apps.size(); ++a) {
            const RunMetrics &r = rows[m * apps.size() + a];
            std::fprintf(stderr, "%-9s %-6s %12llu cycles\n",
                         modes[m].c_str(), apps[a].c_str(),
                         (unsigned long long)r.runtime);
        }
    }

    if (out_file.empty()) {
        writeCsv(std::cout, rows);
    } else {
        std::ofstream os(out_file);
        if (!os)
            barre_fatal("cannot write %s", out_file.c_str());
        writeCsv(os, rows);
        std::printf("wrote %zu rows to %s\n", rows.size(),
                    out_file.c_str());
    }
    return 0;
}
