/**
 * @file
 * sweep - run (configuration x application) grids and emit CSV.
 *
 *   sweep --modes baseline,fbarre --apps atax,matr,gups --out grid.csv
 *   sweep --modes baseline,barre,fbarre --scale 0.25
 *   sweep --jobs 8            # explicit worker count (default: all
 *                             # cores, or $BARRE_JOBS; 1 = serial)
 *   sweep --shard 0/4 --out shard0.csv
 *                             # run every 4th cell (cluster sharding);
 *                             # reassemble with tools/merge_csv
 *
 * Cells run in parallel via runMany(); output rows and CSV bytes are
 * identical regardless of the worker count. With --shard i/N the
 * process runs only its slice of the cell grid and prefixes the CSV
 * with a manifest (shard id, grid signature, cell count) so
 * merge_csv can validate and reassemble the full grid byte-identical
 * to an unsharded run.
 *
 * Intended for plotting and for regression-diffing whole result grids.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/csv.hh"
#include "harness/experiment.hh"
#include "harness/sweep_io.hh"

using namespace barre;

namespace
{

std::vector<std::string>
split(const std::string &s)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string tok;
    while (std::getline(ss, tok, ','))
        if (!tok.empty())
            out.push_back(tok);
    return out;
}

SystemConfig
configFor(const std::string &mode)
{
    if (mode == "baseline")
        return SystemConfig::baselineAts();
    if (mode == "valkyrie")
        return SystemConfig::valkyrieCfg();
    if (mode == "least")
        return SystemConfig::leastCfg();
    if (mode == "barre")
        return SystemConfig::barreCfg();
    if (mode == "fbarre")
        return SystemConfig::fbarreCfg(2);
    if (mode == "fbarre4")
        return SystemConfig::fbarreCfg(4);
    barre_fatal("unknown mode '%s'", mode.c_str());
}

std::string
join(const std::vector<std::string> &xs)
{
    std::string out;
    for (const auto &x : xs)
        out += (out.empty() ? "" : ",") + x;
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> modes{"baseline", "fbarre"};
    std::vector<std::string> apps;
    std::string out_file;
    double scale = 1.0;
    unsigned jobs = 0; // 0 = $BARRE_JOBS / hardware concurrency
    bool sharded = false;
    ShardSpec shard;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                barre_fatal("%s needs a value", arg.c_str());
            return argv[++i];
        };
        if (arg == "--modes") {
            modes = split(next());
        } else if (arg == "--apps") {
            apps = split(next());
        } else if (arg == "--out") {
            out_file = next();
        } else if (arg == "--scale") {
            scale = parseScaleArg(next(), "--scale");
        } else if (arg == "--jobs") {
            jobs = parseUnsignedArg(next(), "--jobs");
        } else if (arg == "--shard") {
            shard = parseShardArg(next());
            sharded = true;
        } else {
            std::fprintf(stderr,
                         "usage: sweep [--modes a,b] [--apps x,y] "
                         "[--scale F] [--jobs N] [--shard I/N] "
                         "[--out FILE]\n");
            return arg == "--help" || arg == "-h" ? 0 : 1;
        }
    }

    if (apps.empty())
        for (const auto &a : standardSuite())
            apps.push_back(a.name);

    std::vector<NamedConfig> cfgs;
    for (const auto &mode : modes) {
        SystemConfig cfg = configFor(mode);
        cfg.workload_scale = scale;
        cfgs.push_back({mode, cfg});
    }
    std::vector<ScenarioSpec> specs;
    for (const auto &name : apps) {
        scenarioApp(name); // unknown names die here, not mid-sweep
        specs.push_back(ScenarioSpec::solo(name));
    }

    const std::size_t total = cfgs.size() * specs.size();

    if (!sharded) {
        std::vector<RunMetrics> rows = runMany(cfgs, specs, jobs);
        for (std::size_t m = 0; m < modes.size(); ++m) {
            for (std::size_t a = 0; a < apps.size(); ++a) {
                const RunMetrics &r = rows[m * apps.size() + a];
                std::fprintf(stderr, "%-9s %-6s %12llu cycles\n",
                             modes[m].c_str(), apps[a].c_str(),
                             (unsigned long long)r.runtime);
            }
        }
        if (out_file.empty()) {
            writeCsv(std::cout, rows);
        } else {
            std::ofstream os(out_file);
            if (!os)
                barre_fatal("cannot write %s", out_file.c_str());
            writeCsv(os, rows);
            std::printf("wrote %zu rows to %s\n", rows.size(),
                        out_file.c_str());
        }
        return 0;
    }

    // Sharded run: only this shard's slice of the config-major grid.
    std::vector<std::size_t> cells = shardCells(total, shard);
    std::vector<std::function<RunMetrics()>> sims;
    std::vector<double> hints;
    for (std::size_t cell : cells) {
        const NamedConfig &nc = cfgs[cell / specs.size()];
        const ScenarioSpec &spec = specs[cell % specs.size()];
        sims.push_back([&nc, &spec] {
            RunMetrics m = runScenario(nc.cfg, spec);
            m.config = nc.name;
            return m;
        });
        hints.push_back(cellCostHint(spec));
    }
    std::vector<RunMetrics> results = runManyJobs(sims, hints, jobs);

    ShardFile sf;
    sf.shard = shard;
    sf.grid = "modes=" + join(modes) + ";apps=" + join(apps) +
              ";scale=" + csprintf("%g", scale);
    sf.total_cells = total;
    sf.header = csvHeader();
    for (std::size_t k = 0; k < results.size(); ++k) {
        const RunMetrics &r = results[k];
        std::fprintf(stderr, "[%zu/%zu] %-9s %-6s %12llu cycles\n",
                     cells[k], total, r.config.c_str(),
                     r.app.c_str(), (unsigned long long)r.runtime);
        sf.rows.push_back(csvRow(r));
    }

    if (out_file.empty()) {
        writeShardCsv(std::cout, sf);
    } else {
        std::ofstream os(out_file);
        if (!os)
            barre_fatal("cannot write %s", out_file.c_str());
        writeShardCsv(os, sf);
        std::printf("wrote shard %u/%u (%zu of %zu cells) to %s\n",
                    shard.index, shard.count, sf.rows.size(), total,
                    out_file.c_str());
    }
    return 0;
}
