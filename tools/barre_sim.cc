/**
 * @file
 * barre_sim - the command-line front end to the simulator.
 *
 * Run any Table-I application (or an imported trace) under any
 * translation configuration and print metrics or the full stats dump.
 *
 *   barre_sim --app atax --mode fbarre --merge 2
 *   barre_sim --app gups --mode baseline --ptws 32 --stats
 *   barre_sim --scenario cov+atax --mode fbarre
 *   barre_sim --scenario 'mvt*0.5@2000+poisson:8:2:7'
 *   barre_sim --tenants 64 --churn 2 --seed 7 --mode barre
 *   barre_sim --trace my.trace --mode barre
 *   barre_sim --app fft --record-trace fft.trace
 *   barre_sim --list
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "harness/experiment.hh"
#include "harness/sweep_io.hh"
#include "workloads/trace.hh"

using namespace barre;

namespace
{

void
usage()
{
    std::puts(
        "usage: barre_sim [options]\n"
        "  --app NAME          Table-I application (default atax)\n"
        "  --scenario SPEC     multi-tenant scenario (grammar in\n"
        "                      workloads/scenario.hh; @FILE reads one)\n"
        "  --tenants N         Poisson churn: N arriving tenants\n"
        "  --churn R           arrivals per 100k cycles (default 1)\n"
        "  --seed S            churn RNG seed (default 1)\n"
        "  --trace FILE        replay an access trace instead\n"
        "  --record-trace FILE write the app's trace and exit\n"
        "  --mode M            baseline|valkyrie|least|barre|fbarre\n"
        "  --merge N           F-Barre merge limit (1/2/4)\n"
        "  --chiplets N        GPU chiplets (default 4)\n"
        "  --ptws N            IOMMU walkers, 0 = infinite\n"
        "  --page-size S       4k|64k|2m\n"
        "  --policy P          lasp|coda|chunking|rr\n"
        "  --migration         enable ACUD page migration\n"
        "  --gmmu              GMMU platform (MGvm)\n"
        "  --iommu-tlb         add the 2048-entry IOMMU TLB\n"
        "  --demand-paging     map pages at first touch\n"
        "  --multicast         speculative PFN multicast (ablation)\n"
        "  --domains N         event domains (0 = legacy serial queue)\n"
        "  --sim-threads N     workers advancing the domains (0 = auto)\n"
        "  --sim-epochs        lock-step epoch scheduler instead of the\n"
        "                      default async per-channel scheduler\n"
        "  --scale F           workload scale factor (default 1.0)\n"
        "  --validate          check every translation vs page table\n"
        "  --stats             dump all component stats after the run\n"
        "  --list              list the application suite and exit\n");
}

TranslationMode
parseMode(const std::string &m)
{
    if (m == "baseline")
        return TranslationMode::baseline;
    if (m == "valkyrie")
        return TranslationMode::valkyrie;
    if (m == "least")
        return TranslationMode::least;
    if (m == "barre")
        return TranslationMode::barre;
    if (m == "fbarre")
        return TranslationMode::fbarre;
    barre_fatal("unknown mode '%s'", m.c_str());
}

MappingPolicyKind
parsePolicy(const std::string &p)
{
    if (p == "lasp")
        return MappingPolicyKind::lasp;
    if (p == "coda")
        return MappingPolicyKind::coda;
    if (p == "chunking")
        return MappingPolicyKind::chunking;
    if (p == "rr")
        return MappingPolicyKind::round_robin;
    barre_fatal("unknown policy '%s'", p.c_str());
}

PageSize
parsePageSize(const std::string &s)
{
    if (s == "4k")
        return PageSize::size4k;
    if (s == "64k")
        return PageSize::size64k;
    if (s == "2m")
        return PageSize::size2m;
    barre_fatal("unknown page size '%s'", s.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    std::string app_name = "atax";
    bool app_given = false;
    std::string scenario_text;
    unsigned tenants = 0;
    double churn = 1.0;
    std::uint64_t seed = 1;
    std::string trace_file;
    std::string record_file;
    SystemConfig cfg = SystemConfig::baselineAts();
    bool want_stats = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                barre_fatal("%s needs a value", arg.c_str());
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--list") {
            for (const auto &a : standardSuite()) {
                std::printf("%-8s %-20s %-4s paper MPKI %9.3f\n",
                            a.name.c_str(), a.full_name.c_str(),
                            a.category.c_str(), a.paper_mpki);
            }
            return 0;
        } else if (arg == "--app") {
            app_name = next();
            app_given = true;
        } else if (arg == "--scenario") {
            scenario_text = next();
        } else if (arg == "--tenants") {
            tenants = parseUnsignedArg(next(), "--tenants");
        } else if (arg == "--churn") {
            churn = parseScaleArg(next(), "--churn");
        } else if (arg == "--seed") {
            seed = parseUnsignedArg(next(), "--seed");
        } else if (arg == "--trace") {
            trace_file = next();
        } else if (arg == "--record-trace") {
            record_file = next();
        } else if (arg == "--mode") {
            TranslationMode m = parseMode(next());
            std::uint32_t merge = cfg.driver.merge_limit;
            switch (m) {
              case TranslationMode::baseline:
                cfg = SystemConfig::baselineAts();
                break;
              case TranslationMode::valkyrie:
                cfg = SystemConfig::valkyrieCfg();
                break;
              case TranslationMode::least:
                cfg = SystemConfig::leastCfg();
                break;
              case TranslationMode::barre:
                cfg = SystemConfig::barreCfg();
                break;
              case TranslationMode::fbarre:
                cfg = SystemConfig::fbarreCfg(merge);
                break;
            }
        } else if (arg == "--merge") {
            cfg.driver.merge_limit = parseUnsignedArg(next(), "--merge");
        } else if (arg == "--chiplets") {
            cfg.chiplets = parseUnsignedArg(next(), "--chiplets");
        } else if (arg == "--ptws") {
            cfg.iommu.ptws = parseUnsignedArg(next(), "--ptws");
        } else if (arg == "--page-size") {
            cfg.page_size = parsePageSize(next());
        } else if (arg == "--policy") {
            cfg.driver.policy = parsePolicy(next());
        } else if (arg == "--migration") {
            cfg.migration.enabled = true;
        } else if (arg == "--gmmu") {
            cfg.use_gmmu = true;
        } else if (arg == "--iommu-tlb") {
            cfg.iommu.tlb_enabled = true;
        } else if (arg == "--demand-paging") {
            cfg.driver.demand_paging = true;
        } else if (arg == "--multicast") {
            cfg.iommu.multicast = true;
        } else if (arg == "--domains") {
            cfg.sim_domains = parseUnsignedArg(next(), "--domains");
        } else if (arg == "--sim-threads") {
            cfg.sim_threads =
                parseUnsignedArg(next(), "--sim-threads");
        } else if (arg == "--sim-epochs") {
            cfg.sim_async = false;
        } else if (arg == "--scale") {
            cfg.workload_scale = parseScaleArg(next(), "--scale");
        } else if (arg == "--validate") {
            cfg.validate_translations = true;
        } else if (arg == "--stats") {
            want_stats = true;
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            usage();
            return 1;
        }
    }

    // Workload selection: --scenario / --tenants are whole-machine
    // specs; mixing them with each other or with --app would silently
    // drop one, so it is fatal instead.
    if (!scenario_text.empty() && (app_given || tenants > 0))
        barre_fatal("--scenario conflicts with --app/--tenants");
    if (tenants > 0 && app_given)
        barre_fatal("--tenants conflicts with --app");

    const ScenarioSpec spec =
        !scenario_text.empty()
            ? parseScenarioSpec(scenario_text)
            : (tenants > 0 ? ScenarioSpec::poisson(tenants, churn, seed)
                           : ScenarioSpec::solo(app_name));

    System sys(cfg);

    if (!record_file.empty()) {
        const AppParams &app = appByName(app_name);
        std::ofstream os(record_file);
        if (!os)
            barre_fatal("cannot write %s", record_file.c_str());
        writeTrace(os, sys.recordAppTrace(app));
        std::printf("wrote trace of %s to %s\n", app.name.c_str(),
                    record_file.c_str());
        return 0;
    }

    if (!trace_file.empty()) {
        std::ifstream is(trace_file);
        if (!is)
            barre_fatal("cannot read %s", trace_file.c_str());
        sys.loadTrace(readTrace(is),
                      appByName(app_name).instr_per_access);
    } else {
        sys.loadScenario(spec);
    }

    RunMetrics m = sys.run();

    TextTable t({"metric", "value"});
    t.addRow({"config", to_string(cfg.mode)});
    t.addRow({"app", trace_file.empty() ? spec.label() : trace_file});
    t.addRow({"runtime (cycles)", std::to_string(m.runtime)});
    t.addRow({"accesses", std::to_string(m.accesses)});
    t.addRow({"L2 TLB MPKI", fmt(m.l2_mpki)});
    t.addRow({"ATS packets", std::to_string(m.ats_packets)});
    t.addRow({"IOMMU walks", std::to_string(m.walks)});
    t.addRow({"PEC-calculated (IOMMU)", std::to_string(m.iommu_coalesced)});
    t.addRow({"local calc hits", std::to_string(m.local_calc_hits)});
    t.addRow({"remote calc hits", std::to_string(m.remote_hits)});
    t.addRow({"remote data accesses", std::to_string(m.remote_data)});
    t.addRow({"migrations", std::to_string(m.migrations)});
    t.print("barre_sim");

    if (!m.tenants.empty()) {
        TextTable tt({"tenant", "pid", "arrival", "finish", "runtime",
                      "lat p50", "p95", "p99", "peak L2 TLB"});
        for (const auto &ten : m.tenants) {
            tt.addRow({ten.app, std::to_string(ten.pid),
                       std::to_string(ten.arrival),
                       std::to_string(ten.finish),
                       std::to_string(ten.runtime()),
                       std::to_string(ten.lat_p50),
                       std::to_string(ten.lat_p95),
                       std::to_string(ten.lat_p99),
                       std::to_string(ten.peak_l2_tlb)});
        }
        tt.print("tenants");
    }

    // Under BARRE_DOMAIN_AUDIT=report the run collects cross-domain
    // touches instead of throwing; surface the deduplicated table.
    const auto violations = sys.domainGuard().report();
    if (!violations.empty()) {
        std::printf("\n");
        TextTable dt({"component", "site", "owner", "touched from",
                      "count"});
        for (const auto &v : violations)
            dt.addRow({v.component, v.site, domainTagName(v.owner),
                       domainTagName(v.accessor),
                       std::to_string(v.count)});
        dt.print("domain audit: cross-domain touches");
    }

    if (want_stats) {
        std::printf("\n");
        sys.dumpStats(std::cout);
    }
    return 0;
}
