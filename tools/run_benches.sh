#!/usr/bin/env bash
# Build Release and run the self-benchmarks (parallel runner + event
# queue + partitioned sim + multi-tenant churn); writes one
# schema-versioned
# BENCH_<family>.json per bench family at the repo root. Used to track
# the perf trajectory PR over PR (tools/perf_diff refuses to compare
# files whose schema_version differs).
#
#   tools/run_benches.sh                 # all cores
#   BARRE_JOBS=8 tools/run_benches.sh    # fixed worker count
#   BARRE_SCALE=0.5 tools/run_benches.sh # bigger workload
#
# Env:
#   BUILD_DIR  - build tree to use (default: <repo>/build-release)
set -euo pipefail

root=$(cd "$(dirname "$0")/.." && pwd)
build=${BUILD_DIR:-"$root/build-release"}

cmake -B "$build" -S "$root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build" -j "$(nproc)" --target bench_runner_speedup \
    bench_event_queue bench_pdes_speedup bench_tenants

# One file per bench family; each carries its own schema_version so a
# stale baseline from an older schema is rejected rather than
# mis-compared. bench_pdes_speedup writes its family file
# (BENCH_pdes.json) to the working directory and additionally splices a
# summary member into the runner trajectory file passed as its
# argument, so run from the repo root.
cd "$root"
"$build/bench/bench_runner_speedup" "$root/BENCH_runner.json"
"$build/bench/bench_event_queue" "$root/BENCH_event_queue.json"
"$build/bench/bench_pdes_speedup" "$root/BENCH_runner.json"
"$build/bench/bench_tenants" "$root/BENCH_tenants.json"
for family in runner event_queue pdes tenants; do
    echo "--- BENCH_$family.json"
    cat "$root/BENCH_$family.json"
done
