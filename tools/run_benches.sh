#!/usr/bin/env bash
# Build Release and run the self-benchmarks (parallel runner + event
# queue); writes BENCH_runner.json at the repo root. Used to track the
# perf trajectory PR over PR.
#
#   tools/run_benches.sh                 # all cores
#   BARRE_JOBS=8 tools/run_benches.sh    # fixed worker count
#   BARRE_SCALE=0.5 tools/run_benches.sh # bigger workload
#
# Env:
#   BUILD_DIR  - build tree to use (default: <repo>/build-release)
set -euo pipefail

root=$(cd "$(dirname "$0")/.." && pwd)
build=${BUILD_DIR:-"$root/build-release"}

cmake -B "$build" -S "$root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build" -j "$(nproc)" --target bench_runner_speedup \
    bench_event_queue bench_pdes_speedup

"$build/bench/bench_runner_speedup" "$root/BENCH_runner.json"
# These splice their "event_queue" / "pdes_speedup" members into the
# same JSON.
"$build/bench/bench_event_queue" "$root/BENCH_runner.json"
"$build/bench/bench_pdes_speedup" "$root/BENCH_runner.json"
echo "---"
cat "$root/BENCH_runner.json"
